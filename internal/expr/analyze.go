package expr

import (
	"dynopt/internal/stats"
	"dynopt/internal/types"
)

// ColumnsOf returns every column reference in the expression, in visit order.
func ColumnsOf(e Expr) []*Column {
	var out []*Column
	e.Walk(func(n Expr) {
		if c, ok := n.(*Column); ok {
			out = append(out, c)
		}
	})
	return out
}

// QualifiersOf returns the set of dataset aliases the expression touches.
func QualifiersOf(e Expr) map[string]bool {
	out := map[string]bool{}
	for _, c := range ColumnsOf(e) {
		out[c.Qualifier] = true
	}
	return out
}

// IsComplex reports whether the predicate contains a UDF call or a query
// parameter — the paper's definition of a complex predicate (§5.1), whose
// selectivity a static optimizer cannot estimate.
func IsComplex(e Expr) bool {
	complex := false
	e.Walk(func(n Expr) {
		switch n.(type) {
		case *Call, *Param:
			complex = true
		}
	})
	return complex
}

// Compiled is a predicate specialized against one schema: column lookups are
// resolved to positional indexes once, so the per-tuple hot path does no map
// or string work.
type Compiled func(t types.Tuple) (types.Value, error)

// Compile specializes e against the schema, resolving column references to
// tuple offsets. Params and UDFs are captured from env.
func Compile(e Expr, env *Env) (Compiled, error) {
	switch n := e.(type) {
	case *Column:
		i, ok := env.Schema.Index(n.key())
		if !ok {
			// Fall back to the interpreted path which produces a precise
			// error message.
			return func(t types.Tuple) (types.Value, error) { return n.Eval(t, env) }, nil
		}
		return func(t types.Tuple) (types.Value, error) { return t[i], nil }, nil
	case *Literal:
		v := n.Val
		return func(types.Tuple) (types.Value, error) { return v, nil }, nil
	case *Param:
		v, err := n.Eval(nil, env)
		if err != nil {
			return nil, err
		}
		return func(types.Tuple) (types.Value, error) { return v, nil }, nil
	case *Compare:
		l, err := Compile(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Compile(n.R, env)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(t types.Tuple) (types.Value, error) {
			lv, err := l(t)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(t)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Bool(false), nil
			}
			cmp := lv.Compare(rv)
			var out bool
			switch op {
			case CmpEq:
				out = cmp == 0
			case CmpNe:
				out = cmp != 0
			case CmpLt:
				out = cmp < 0
			case CmpLe:
				out = cmp <= 0
			case CmpGt:
				out = cmp > 0
			case CmpGe:
				out = cmp >= 0
			}
			return types.Bool(out), nil
		}, nil
	case *Between:
		x, err := Compile(n.X, env)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(n.Lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(n.Hi, env)
		if err != nil {
			return nil, err
		}
		return func(t types.Tuple) (types.Value, error) {
			xv, err := x(t)
			if err != nil {
				return types.Null(), err
			}
			lov, err := lo(t)
			if err != nil {
				return types.Null(), err
			}
			hiv, err := hi(t)
			if err != nil {
				return types.Null(), err
			}
			if xv.IsNull() || lov.IsNull() || hiv.IsNull() {
				return types.Bool(false), nil
			}
			return types.Bool(xv.Compare(lov) >= 0 && xv.Compare(hiv) <= 0), nil
		}, nil
	case *And:
		kids := make([]Compiled, len(n.Kids))
		for i, k := range n.Kids {
			c, err := Compile(k, env)
			if err != nil {
				return nil, err
			}
			kids[i] = c
		}
		return func(t types.Tuple) (types.Value, error) {
			for _, k := range kids {
				v, err := k(t)
				if err != nil {
					return types.Null(), err
				}
				if !v.IsTrue() {
					return types.Bool(false), nil
				}
			}
			return types.Bool(true), nil
		}, nil
	case *Or:
		kids := make([]Compiled, len(n.Kids))
		for i, k := range n.Kids {
			c, err := Compile(k, env)
			if err != nil {
				return nil, err
			}
			kids[i] = c
		}
		return func(t types.Tuple) (types.Value, error) {
			for _, k := range kids {
				v, err := k(t)
				if err != nil {
					return types.Null(), err
				}
				if v.IsTrue() {
					return types.Bool(true), nil
				}
			}
			return types.Bool(false), nil
		}, nil
	case *Not:
		k, err := Compile(n.Kid, env)
		if err != nil {
			return nil, err
		}
		return func(t types.Tuple) (types.Value, error) {
			v, err := k(t)
			if err != nil {
				return types.Null(), err
			}
			return types.Bool(!v.IsTrue()), nil
		}, nil
	default:
		// Calls and arithmetic fall back to tree interpretation; their cost
		// dominates dispatch anyway.
		return func(t types.Tuple) (types.Value, error) { return e.Eval(t, env) }, nil
	}
}

// StaticSelectivity estimates the selectivity of a local predicate the way a
// traditional static optimizer would: histogram lookups for simple
// fixed-value comparisons, independence-multiplied across conjuncts, and
// Selinger defaults for anything complex (UDFs, parameters) — the exact
// behaviour whose failure modes motivate the paper.
func StaticSelectivity(e Expr, ds *stats.DatasetStats) float64 {
	switch n := e.(type) {
	case *And:
		sel := 1.0
		for _, k := range n.Kids {
			sel *= StaticSelectivity(k, ds) // independence assumption
		}
		return sel
	case *Or:
		// Inclusion-exclusion under independence.
		miss := 1.0
		for _, k := range n.Kids {
			miss *= 1 - StaticSelectivity(k, ds)
		}
		return 1 - miss
	case *Not:
		return 1 - StaticSelectivity(n.Kid, ds)
	case *Compare:
		if IsComplex(n) {
			return stats.DefaultUDFSelectivity
		}
		col, lit := splitColLit(n.L, n.R)
		if col == nil || lit == nil {
			return defaultForCmp(n.Op)
		}
		lv, ok := lit.Val.AsFloat()
		if !ok || ds == nil {
			return defaultForCmp(n.Op)
		}
		fs := ds.Fields[col.Name]
		op := cmpToRange(n.Op, n.L == lit) // flipped when literal on the left
		return stats.EstimateSelectivity(fs, op, lv, lv)
	case *Between:
		if IsComplex(n) {
			return stats.DefaultUDFSelectivity
		}
		col, _ := n.X.(*Column)
		lo, lok := n.Lo.(*Literal)
		hi, hok := n.Hi.(*Literal)
		if col == nil || !lok || !hok || ds == nil {
			return stats.DefaultIneqSelectivity
		}
		lof, ok1 := lo.Val.AsFloat()
		hif, ok2 := hi.Val.AsFloat()
		if !ok1 || !ok2 {
			return stats.DefaultIneqSelectivity
		}
		return stats.EstimateSelectivity(ds.Fields[col.Name], stats.OpBetween, lof, hif)
	case *Call, *Param:
		return stats.DefaultUDFSelectivity
	default:
		return stats.DefaultEqSelectivity
	}
}

func splitColLit(l, r Expr) (*Column, *Literal) {
	if c, ok := l.(*Column); ok {
		if lit, ok := r.(*Literal); ok {
			return c, lit
		}
	}
	if c, ok := r.(*Column); ok {
		if lit, ok := l.(*Literal); ok {
			return c, lit
		}
	}
	return nil, nil
}

func cmpToRange(op CmpOp, litOnLeft bool) stats.RangeOp {
	if litOnLeft {
		// lit < col  ≡  col > lit, etc.
		switch op {
		case CmpLt:
			op = CmpGt
		case CmpLe:
			op = CmpGe
		case CmpGt:
			op = CmpLt
		case CmpGe:
			op = CmpLe
		}
	}
	switch op {
	case CmpEq:
		return stats.OpEq
	case CmpNe:
		return stats.OpNe
	case CmpLt:
		return stats.OpLt
	case CmpLe:
		return stats.OpLe
	case CmpGt:
		return stats.OpGt
	case CmpGe:
		return stats.OpGe
	default:
		return stats.OpEq
	}
}

func defaultForCmp(op CmpOp) float64 {
	switch op {
	case CmpEq:
		return stats.DefaultEqSelectivity
	case CmpNe:
		return 1 - stats.DefaultEqSelectivity
	default:
		return stats.DefaultIneqSelectivity
	}
}
