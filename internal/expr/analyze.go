package expr

import (
	"dynopt/internal/stats"
	"dynopt/internal/types"
)

// ColumnsOf returns every column reference in the expression, in visit order.
func ColumnsOf(e Expr) []*Column {
	var out []*Column
	e.Walk(func(n Expr) {
		if c, ok := n.(*Column); ok {
			out = append(out, c)
		}
	})
	return out
}

// QualifiersOf returns the set of dataset aliases the expression touches.
func QualifiersOf(e Expr) map[string]bool {
	out := map[string]bool{}
	for _, c := range ColumnsOf(e) {
		out[c.Qualifier] = true
	}
	return out
}

// IsComplex reports whether the predicate contains a UDF call or a query
// parameter — the paper's definition of a complex predicate (§5.1), whose
// selectivity a static optimizer cannot estimate.
func IsComplex(e Expr) bool {
	complex := false
	e.Walk(func(n Expr) {
		switch n.(type) {
		case *Call, *Param:
			complex = true
		}
	})
	return complex
}

// Compiled is a predicate specialized against one schema: column lookups are
// resolved to positional indexes once, so the per-tuple hot path does no map
// or string work.
type Compiled func(t types.Tuple) (types.Value, error)

// Compile specializes e against the schema, resolving column references to
// tuple offsets. Params and UDFs are captured from env.
func Compile(e Expr, env *Env) (Compiled, error) {
	switch n := e.(type) {
	case *Column:
		i, ok := env.Schema.Index(n.key())
		if !ok {
			// Fall back to the interpreted path which produces a precise
			// error message.
			return func(t types.Tuple) (types.Value, error) { return n.Eval(t, env) }, nil
		}
		return func(t types.Tuple) (types.Value, error) { return t[i], nil }, nil
	case *Literal:
		v := n.Val
		return func(types.Tuple) (types.Value, error) { return v, nil }, nil
	case *Param:
		v, err := n.Eval(nil, env)
		if err != nil {
			return nil, err
		}
		return func(types.Tuple) (types.Value, error) { return v, nil }, nil
	case *Compare:
		op := n.Op
		// Hoist constant operands out of the per-row path: a filter like
		// pay >= 900 used to re-evaluate the literal's closure (and its
		// null check) for every row. With the constant folded at compile
		// time the row loop is one column load, one null test, one Compare.
		if cv, ok, err := constOperand(n.R, env); ok || err != nil {
			if err != nil {
				return nil, err
			}
			if i, ok := columnIndex(n.L, env); ok {
				return compareColConst(i, cv, op, false), nil
			}
		}
		if cv, ok, err := constOperand(n.L, env); ok || err != nil {
			if err != nil {
				return nil, err
			}
			if i, ok := columnIndex(n.R, env); ok {
				return compareColConst(i, cv, op, true), nil
			}
		}
		l, err := Compile(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Compile(n.R, env)
		if err != nil {
			return nil, err
		}
		return func(t types.Tuple) (types.Value, error) {
			lv, err := l(t)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(t)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Bool(false), nil
			}
			return types.Bool(cmpSatisfies(lv.Compare(rv), op)), nil
		}, nil
	case *Between:
		// The same hoist for BETWEEN's bounds: col BETWEEN lit AND lit is
		// the hot shape (every Figure-7 range filter), and the old form
		// re-fetched both bound values through closures per row.
		if xi, ok := columnIndex(n.X, env); ok {
			lov, lok, err := constOperand(n.Lo, env)
			if err != nil {
				return nil, err
			}
			hiv, hok, err := constOperand(n.Hi, env)
			if err != nil {
				return nil, err
			}
			if lok && hok {
				if lov.IsNull() || hiv.IsNull() {
					return func(types.Tuple) (types.Value, error) { return types.Bool(false), nil }, nil
				}
				return func(t types.Tuple) (types.Value, error) {
					xv := t[xi]
					if xv.IsNull() {
						return types.Bool(false), nil
					}
					return types.Bool(xv.Compare(lov) >= 0 && xv.Compare(hiv) <= 0), nil
				}, nil
			}
		}
		x, err := Compile(n.X, env)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(n.Lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(n.Hi, env)
		if err != nil {
			return nil, err
		}
		return func(t types.Tuple) (types.Value, error) {
			xv, err := x(t)
			if err != nil {
				return types.Null(), err
			}
			lov, err := lo(t)
			if err != nil {
				return types.Null(), err
			}
			hiv, err := hi(t)
			if err != nil {
				return types.Null(), err
			}
			if xv.IsNull() || lov.IsNull() || hiv.IsNull() {
				return types.Bool(false), nil
			}
			return types.Bool(xv.Compare(lov) >= 0 && xv.Compare(hiv) <= 0), nil
		}, nil
	case *And:
		kids := make([]Compiled, len(n.Kids))
		for i, k := range n.Kids {
			c, err := Compile(k, env)
			if err != nil {
				return nil, err
			}
			kids[i] = c
		}
		return func(t types.Tuple) (types.Value, error) {
			for _, k := range kids {
				v, err := k(t)
				if err != nil {
					return types.Null(), err
				}
				if !v.IsTrue() {
					return types.Bool(false), nil
				}
			}
			return types.Bool(true), nil
		}, nil
	case *Or:
		kids := make([]Compiled, len(n.Kids))
		for i, k := range n.Kids {
			c, err := Compile(k, env)
			if err != nil {
				return nil, err
			}
			kids[i] = c
		}
		return func(t types.Tuple) (types.Value, error) {
			for _, k := range kids {
				v, err := k(t)
				if err != nil {
					return types.Null(), err
				}
				if v.IsTrue() {
					return types.Bool(true), nil
				}
			}
			return types.Bool(false), nil
		}, nil
	case *Not:
		k, err := Compile(n.Kid, env)
		if err != nil {
			return nil, err
		}
		return func(t types.Tuple) (types.Value, error) {
			v, err := k(t)
			if err != nil {
				return types.Null(), err
			}
			return types.Bool(!v.IsTrue()), nil
		}, nil
	default:
		// Calls and arithmetic fall back to tree interpretation; their cost
		// dominates dispatch anyway.
		return func(t types.Tuple) (types.Value, error) { return e.Eval(t, env) }, nil
	}
}

// constOperand resolves an operand that is constant for the whole scan —
// a literal, or a parameter bound in env — so Compile can fold it instead
// of re-evaluating its closure per row.
func constOperand(e Expr, env *Env) (types.Value, bool, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, true, nil
	case *Param:
		v, err := n.Eval(nil, env)
		if err != nil {
			return types.Null(), false, err
		}
		return v, true, nil
	}
	return types.Null(), false, nil
}

// columnIndex resolves a direct column reference to its schema offset.
func columnIndex(e Expr, env *Env) (int, bool) {
	c, ok := e.(*Column)
	if !ok {
		return 0, false
	}
	return env.Schema.Index(c.key())
}

// cmpSatisfies applies a comparison operator to a Value.Compare result.
func cmpSatisfies(cmp int, op CmpOp) bool {
	switch op {
	case CmpEq:
		return cmp == 0
	case CmpNe:
		return cmp != 0
	case CmpLt:
		return cmp < 0
	case CmpLe:
		return cmp <= 0
	case CmpGt:
		return cmp > 0
	case CmpGe:
		return cmp >= 0
	}
	return false
}

// compareColConst is the hoisted form of a column-vs-constant comparison:
// the constant's value and null check are resolved once at compile time.
// flipped marks the constant as the left operand (lit OP col).
func compareColConst(col int, cv types.Value, op CmpOp, flipped bool) Compiled {
	if cv.IsNull() {
		return func(types.Tuple) (types.Value, error) { return types.Bool(false), nil }
	}
	return func(t types.Tuple) (types.Value, error) {
		v := t[col]
		if v.IsNull() {
			return types.Bool(false), nil
		}
		cmp := v.Compare(cv)
		if flipped {
			cmp = -cmp
		}
		return types.Bool(cmpSatisfies(cmp, op)), nil
	}
}

// StaticSelectivity estimates the selectivity of a local predicate the way a
// traditional static optimizer would: histogram lookups for simple
// fixed-value comparisons, independence-multiplied across conjuncts, and
// Selinger defaults for anything complex (UDFs, parameters) — the exact
// behaviour whose failure modes motivate the paper.
func StaticSelectivity(e Expr, ds *stats.DatasetStats) float64 {
	switch n := e.(type) {
	case *And:
		sel := 1.0
		for _, k := range n.Kids {
			sel *= StaticSelectivity(k, ds) // independence assumption
		}
		return sel
	case *Or:
		// Inclusion-exclusion under independence.
		miss := 1.0
		for _, k := range n.Kids {
			miss *= 1 - StaticSelectivity(k, ds)
		}
		return 1 - miss
	case *Not:
		return 1 - StaticSelectivity(n.Kid, ds)
	case *Compare:
		if IsComplex(n) {
			return stats.DefaultUDFSelectivity
		}
		col, lit := splitColLit(n.L, n.R)
		if col == nil || lit == nil {
			return defaultForCmp(n.Op)
		}
		lv, ok := lit.Val.AsFloat()
		if !ok || ds == nil {
			return defaultForCmp(n.Op)
		}
		fs := ds.Fields[col.Name]
		op := cmpToRange(n.Op, n.L == lit) // flipped when literal on the left
		return stats.EstimateSelectivity(fs, op, lv, lv)
	case *Between:
		if IsComplex(n) {
			return stats.DefaultUDFSelectivity
		}
		col, _ := n.X.(*Column)
		lo, lok := n.Lo.(*Literal)
		hi, hok := n.Hi.(*Literal)
		if col == nil || !lok || !hok || ds == nil {
			return stats.DefaultIneqSelectivity
		}
		lof, ok1 := lo.Val.AsFloat()
		hif, ok2 := hi.Val.AsFloat()
		if !ok1 || !ok2 {
			return stats.DefaultIneqSelectivity
		}
		return stats.EstimateSelectivity(ds.Fields[col.Name], stats.OpBetween, lof, hif)
	case *Call, *Param:
		return stats.DefaultUDFSelectivity
	default:
		return stats.DefaultEqSelectivity
	}
}

func splitColLit(l, r Expr) (*Column, *Literal) {
	if c, ok := l.(*Column); ok {
		if lit, ok := r.(*Literal); ok {
			return c, lit
		}
	}
	if c, ok := r.(*Column); ok {
		if lit, ok := l.(*Literal); ok {
			return c, lit
		}
	}
	return nil, nil
}

func cmpToRange(op CmpOp, litOnLeft bool) stats.RangeOp {
	if litOnLeft {
		// lit < col  ≡  col > lit, etc.
		switch op {
		case CmpLt:
			op = CmpGt
		case CmpLe:
			op = CmpGe
		case CmpGt:
			op = CmpLt
		case CmpGe:
			op = CmpLe
		}
	}
	switch op {
	case CmpEq:
		return stats.OpEq
	case CmpNe:
		return stats.OpNe
	case CmpLt:
		return stats.OpLt
	case CmpLe:
		return stats.OpLe
	case CmpGt:
		return stats.OpGt
	case CmpGe:
		return stats.OpGe
	default:
		return stats.OpEq
	}
}

func defaultForCmp(op CmpOp) float64 {
	switch op {
	case CmpEq:
		return stats.DefaultEqSelectivity
	case CmpNe:
		return 1 - stats.DefaultEqSelectivity
	default:
		return stats.DefaultIneqSelectivity
	}
}
