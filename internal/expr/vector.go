package expr

import (
	"dynopt/internal/types"
)

// This file compiles predicate trees into vectorized selection kernels: one
// closure per node transforming a selection vector (ascending row indexes
// into the current window) into the subset the node accepts, reading typed
// column vectors instead of 32-byte tagged values. The semantics are pinned
// to the scalar path exactly — a row survives the kernel iff the scalar
// Eval of the same node returns Bool(true) for it (so NULL operands drop
// the row, NOT resurrects it, and numeric cross-kind comparisons take
// Value.Compare's float route) — which is what lets the engine swap the
// kernel in under the byte-identical batch-equivalence suite.
//
// Fallback rules (the "kernel fallback" contract):
//   - Call, Param-as-predicate, Arith, and comparisons whose operand kinds
//     the typed loops don't cover (bools, statically mismatched non-numeric
//     kinds) compile to a per-row kernel over the scalar Compile closure —
//     the tree still runs vectorized around them.
//   - A column whose gathered vector reports Mixed (stored values disagree
//     with the schema kind) makes that node fall back per window, at run
//     time, to the same scalar closure.
//   - A tree with no vectorizable node at all reports ok=false and the
//     caller stays on the plain scalar path.

// VecPred is a compiled vectorized predicate. It filters sel — ascending
// row indexes into rows — down to the rows the predicate accepts, preserving
// order. cols serves the window's column vectors (kernels touch only the
// columns they reference). The returned slice may alias sel's backing array
// or kernel-owned scratch: it is valid until the kernel's next invocation,
// and the kernel may overwrite sel's contents.
type VecPred func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error)

// CompileVec compiles e into a vectorized kernel against env's schema.
// ok=false (with nil error) means nothing in the tree vectorizes and the
// caller should use the scalar Compile path unchanged.
func CompileVec(e Expr, env *Env) (k VecPred, ok bool, err error) {
	k, vectorized, err := compileVecNode(e, env)
	if err != nil || !vectorized {
		return nil, false, err
	}
	return k, true, nil
}

// compileVecNode compiles one node; vectorized reports whether anything at
// or below this node runs columnar (a node whose whole subtree is scalar
// compiles to a single per-row kernel).
func compileVecNode(e Expr, env *Env) (k VecPred, vectorized bool, err error) {
	switch n := e.(type) {
	case *Compare:
		return compileVecCompare(n, env)
	case *Between:
		// x BETWEEN lo AND hi is x>=lo AND x<=hi for non-null operands, and
		// both forms drop the row when any operand is NULL (a null bound
		// makes its comparison kernel select nothing), so composing the two
		// comparison kernels is exact. The common column-between-constants
		// shape fuses into a single-pass kernel first.
		if k, fused, err := fuseBetween(n, env); err != nil || fused {
			return k, fused, err
		}
		ge, gok, err := compileVecCompare(&Compare{Op: CmpGe, L: n.X, R: n.Lo}, env)
		if err != nil {
			return nil, false, err
		}
		le, lok, err := compileVecCompare(&Compare{Op: CmpLe, L: n.X, R: n.Hi}, env)
		if err != nil {
			return nil, false, err
		}
		if !gok || !lok {
			// Half-scalar BETWEEN would evaluate a Compare node the scalar
			// tree never built; fall back to the node's own scalar form.
			k, err := scalarKernel(n, env)
			return k, false, err
		}
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			sel, err := ge(rows, cols, sel)
			if err != nil {
				return nil, err
			}
			return le(rows, cols, sel)
		}, true, nil
	case *And:
		kids := make([]VecPred, len(n.Kids))
		anyVec := false
		for i, kid := range n.Kids {
			kk, kv, err := compileVecNode(kid, env)
			if err != nil {
				return nil, false, err
			}
			kids[i] = kk
			anyVec = anyVec || kv
		}
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			var err error
			for _, kid := range kids {
				if len(sel) == 0 {
					return sel, nil
				}
				sel, err = kid(rows, cols, sel)
				if err != nil {
					return nil, err
				}
			}
			return sel, nil
		}, anyVec, nil
	case *Or:
		kids := make([]VecPred, len(n.Kids))
		anyVec := false
		for i, kid := range n.Kids {
			kk, kv, err := compileVecNode(kid, env)
			if err != nil {
				return nil, false, err
			}
			kids[i] = kk
			anyVec = anyVec || kv
		}
		// Scratch is owned by the closure and reused across windows: rem
		// holds the rows no kid has accepted yet, cand the copy each kid may
		// filter in place, marks the per-row accept flags the final pass
		// compacts from — walking the original sel keeps the union ascending
		// without a sort.
		var rem, cand []int32
		var marks []bool
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			if cap(marks) < len(rows) {
				marks = make([]bool, len(rows))
			}
			marks = marks[:len(rows)]
			for _, r := range sel {
				marks[r] = false
			}
			rem = append(rem[:0], sel...)
			for _, kid := range kids {
				if len(rem) == 0 {
					break
				}
				cand = append(cand[:0], rem...)
				m, err := kid(rows, cols, cand)
				if err != nil {
					return nil, err
				}
				for _, r := range m {
					marks[r] = true
				}
				rem = subtractSel(rem, m)
			}
			out := 0
			//dynopt:hotpath
			for _, r := range sel {
				if marks[r] {
					sel[out] = r
					out++
				}
			}
			return sel[:out], nil
		}, anyVec, nil
	case *Not:
		kid, kv, err := compileVecNode(n.Kid, env)
		if err != nil {
			return nil, false, err
		}
		var cand []int32
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			cand = append(cand[:0], sel...)
			m, err := kid(rows, cols, cand)
			if err != nil {
				return nil, err
			}
			// NOT accepts exactly the rows the kid did not (scalar: NULL and
			// false both negate to true), i.e. sel minus the kid's matches.
			return subtractSel(sel, m), nil
		}, kv, nil
	case *Literal, *Param:
		v, err := e.Eval(nil, env)
		if err != nil {
			return nil, false, err
		}
		keep := v.IsTrue()
		return func(_ []types.Tuple, _ types.ColSource, sel []int32) ([]int32, error) {
			if keep {
				return sel, nil
			}
			return sel[:0], nil
		}, false, nil
	default:
		k, err := scalarKernel(e, env)
		return k, false, err
	}
}

// subtractSel removes m (an ascending subset of sel) from sel in place and
// returns the shortened slice. The write index never passes the read index,
// so in-place compaction is safe.
func subtractSel(sel, m []int32) []int32 {
	if len(m) == 0 {
		return sel
	}
	k, j := 0, 0
	for _, r := range sel {
		if j < len(m) && m[j] == r {
			j++
			continue
		}
		sel[k] = r
		k++
	}
	return sel[:k]
}

// scalarKernel wraps a node's scalar compiled form as a per-row kernel —
// the per-node fallback that keeps Call/UDF/Arith/mixed-kind subtrees
// working inside an otherwise vectorized predicate.
func scalarKernel(e Expr, env *Env) (VecPred, error) {
	sc, err := Compile(e, env)
	if err != nil {
		return nil, err
	}
	return func(rows []types.Tuple, _ types.ColSource, sel []int32) ([]int32, error) {
		return scalarFilter(sc, rows, sel)
	}, nil
}

// scalarFilter filters sel through a scalar compiled predicate in place.
func scalarFilter(sc Compiled, rows []types.Tuple, sel []int32) ([]int32, error) {
	k := 0
	for _, r := range sel {
		v, err := sc(rows[r])
		if err != nil {
			return nil, err
		}
		if v.IsTrue() {
			sel[k] = r
			k++
		}
	}
	return sel[:k], nil
}

// acceptMask maps a comparison operator to the set of three-way compare
// outcomes it accepts, indexed lt/eq/gt. The mixed int/float kernels compute
// Value.Compare's -1/0/+1 result with typed operations and test it against
// the mask, so NaN behaves exactly as the scalar path (incomparable floats
// compare "equal") and every operator shares one loop shape. The same-kind
// kernels use the specialized per-operator loops below instead, which encode
// the identical semantics branch-free of the mask lookup.
func acceptMask(op CmpOp) (m [3]bool) {
	switch op {
	case CmpEq:
		m[1] = true
	case CmpNe:
		m[0], m[2] = true, true
	case CmpLt:
		m[0] = true
	case CmpLe:
		m[0], m[1] = true, true
	case CmpGt:
		m[2] = true
	case CmpGe:
		m[1], m[2] = true, true
	}
	return m
}

// vecOrd are the element types the specialized comparison loops cover.
type vecOrd interface {
	~int64 | ~float64 | ~string
}

// The per-operator selection loops. Each filters sel in place to the rows
// where xs[r] OP k holds, skipping NULLs. The operator expressions are the
// NaN-correct rewrites of Value.Compare's three-way result — Le as !(x>k),
// Ge as !(x<k), Eq as neither, Ne as either — so an incomparable float pair
// behaves exactly like the scalar path's "compare equal", while for total
// orders (int, string) they reduce to the direct operators.

//dynopt:hotpath
func selLtConst[T vecOrd](xs []T, nulls []bool, sel []int32, k T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && xs[r] < k {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selLeConst[T vecOrd](xs []T, nulls []bool, sel []int32, k T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && !(xs[r] > k) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selGtConst[T vecOrd](xs []T, nulls []bool, sel []int32, k T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && xs[r] > k {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selGeConst[T vecOrd](xs []T, nulls []bool, sel []int32, k T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && !(xs[r] < k) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selEqConst[T vecOrd](xs []T, nulls []bool, sel []int32, k T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && !(xs[r] < k) && !(xs[r] > k) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selNeConst[T vecOrd](xs []T, nulls []bool, sel []int32, k T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && (xs[r] < k || xs[r] > k) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

// The exact equality loops for total-order kinds: == on a string bails on a
// length mismatch before touching bytes, where the ordered rewrite above
// walks the common prefix twice. Floats must not use these — they would
// change NaN behavior.

//dynopt:hotpath
func selEqConstExact[T vecOrd](xs []T, nulls []bool, sel []int32, k T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && xs[r] == k {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selNeConstExact[T vecOrd](xs []T, nulls []bool, sel []int32, k T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && xs[r] != k {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

// constLoop selects the specialized col-OP-const loop for an operator.
func constLoop[T vecOrd](op CmpOp) func([]T, []bool, []int32, T) []int32 {
	switch op {
	case CmpLt:
		return selLtConst[T]
	case CmpLe:
		return selLeConst[T]
	case CmpGt:
		return selGtConst[T]
	case CmpGe:
		return selGeConst[T]
	case CmpEq:
		return selEqConst[T]
	default:
		return selNeConst[T]
	}
}

// totalConstLoop is constLoop for total-order kinds (int, string): identical
// semantics, but Eq/Ne compile to the direct == / != forms.
func totalConstLoop[T vecOrd](op CmpOp) func([]T, []bool, []int32, T) []int32 {
	switch op {
	case CmpEq:
		return selEqConstExact[T]
	case CmpNe:
		return selNeConstExact[T]
	default:
		return constLoop[T](op)
	}
}

//dynopt:hotpath
func selLtCol[T vecOrd](xs, ys []T, ln, rn []bool, sel []int32) []int32 {
	out := 0
	for _, r := range sel {
		if !ln[r] && !rn[r] && xs[r] < ys[r] {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selLeCol[T vecOrd](xs, ys []T, ln, rn []bool, sel []int32) []int32 {
	out := 0
	for _, r := range sel {
		if !ln[r] && !rn[r] && !(xs[r] > ys[r]) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selGtCol[T vecOrd](xs, ys []T, ln, rn []bool, sel []int32) []int32 {
	out := 0
	for _, r := range sel {
		if !ln[r] && !rn[r] && xs[r] > ys[r] {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selGeCol[T vecOrd](xs, ys []T, ln, rn []bool, sel []int32) []int32 {
	out := 0
	for _, r := range sel {
		if !ln[r] && !rn[r] && !(xs[r] < ys[r]) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selEqCol[T vecOrd](xs, ys []T, ln, rn []bool, sel []int32) []int32 {
	out := 0
	for _, r := range sel {
		if !ln[r] && !rn[r] && !(xs[r] < ys[r]) && !(xs[r] > ys[r]) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selNeCol[T vecOrd](xs, ys []T, ln, rn []bool, sel []int32) []int32 {
	out := 0
	for _, r := range sel {
		if !ln[r] && !rn[r] && (xs[r] < ys[r] || xs[r] > ys[r]) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

// selBetweenConst filters sel to rows with lo <= xs[r] <= hi in one pass —
// the fused composition of the Ge and Le forms, same NaN behaviour.
//
//dynopt:hotpath
func selBetweenConst[T vecOrd](xs []T, nulls []bool, sel []int32, lo, hi T) []int32 {
	out := 0
	for _, r := range sel {
		if !nulls[r] && !(xs[r] < lo) && !(xs[r] > hi) {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

// fuseBetween compiles col BETWEEN const AND const as a single-pass kernel.
// fused=false (nil error) means the shape or kind pairing isn't covered and
// the caller composes the two comparison kernels instead.
func fuseBetween(n *Between, env *Env) (VecPred, bool, error) {
	x, err := classifyOperand(n.X, env)
	if err != nil {
		return nil, false, err
	}
	lo, err := classifyOperand(n.Lo, env)
	if err != nil {
		return nil, false, err
	}
	hi, err := classifyOperand(n.Hi, env)
	if err != nil {
		return nil, false, err
	}
	if !x.isCol || !lo.isLit || !hi.isLit {
		return nil, false, nil
	}
	if lo.val.IsNull() || hi.val.IsNull() {
		// Scalar semantics: a NULL bound fails the comparison for every row.
		return func(_ []types.Tuple, _ types.ColSource, sel []int32) ([]int32, error) {
			return sel[:0], nil
		}, true, nil
	}
	// The run-time Mixed fallback needs the node's scalar form.
	sc, err := Compile(n, env)
	if err != nil {
		return nil, false, err
	}
	ci := x.col
	numeric := func(v types.Value) bool { return v.K == types.KindInt || v.K == types.KindFloat }
	switch {
	case x.kind == types.KindInt && lo.val.K == types.KindInt && hi.val.K == types.KindInt:
		l, h := lo.val.I(), hi.val.I()
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			v := cols.Col(ci)
			if v.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return selBetweenConst(v.Ints, v.Null, sel, l, h), nil
		}, true, nil
	case x.kind == types.KindFloat && numeric(lo.val) && numeric(hi.val):
		l, _ := lo.val.AsFloat()
		h, _ := hi.val.AsFloat()
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			v := cols.Col(ci)
			if v.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return selBetweenConst(v.Floats, v.Null, sel, l, h), nil
		}, true, nil
	case x.kind == types.KindString && lo.val.K == types.KindString && hi.val.K == types.KindString:
		l, h := lo.val.S, hi.val.S
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			v := cols.Col(ci)
			if v.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return selBetweenConst(v.Strs, v.Null, sel, l, h), nil
		}, true, nil
	}
	return nil, false, nil
}

// colLoop selects the specialized col-OP-col loop for an operator.
func colLoop[T vecOrd](op CmpOp) func([]T, []T, []bool, []bool, []int32) []int32 {
	switch op {
	case CmpLt:
		return selLtCol[T]
	case CmpLe:
		return selLeCol[T]
	case CmpGt:
		return selGtCol[T]
	case CmpGe:
		return selGeCol[T]
	case CmpEq:
		return selEqCol[T]
	default:
		return selNeCol[T]
	}
}

//dynopt:hotpath
func selEqColExact[T vecOrd](xs, ys []T, ln, rn []bool, sel []int32) []int32 {
	out := 0
	for _, r := range sel {
		if !ln[r] && !rn[r] && xs[r] == ys[r] {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

//dynopt:hotpath
func selNeColExact[T vecOrd](xs, ys []T, ln, rn []bool, sel []int32) []int32 {
	out := 0
	for _, r := range sel {
		if !ln[r] && !rn[r] && xs[r] != ys[r] {
			sel[out] = r
			out++
		}
	}
	return sel[:out]
}

// totalColLoop is colLoop for total-order kinds: Eq/Ne take the direct
// == / != forms (see totalConstLoop).
func totalColLoop[T vecOrd](op CmpOp) func([]T, []T, []bool, []bool, []int32) []int32 {
	switch op {
	case CmpEq:
		return selEqColExact[T]
	case CmpNe:
		return selNeColExact[T]
	default:
		return colLoop[T](op)
	}
}

// flipOp mirrors an operator across its operands: const OP col runs as
// col flip(OP) const.
func flipOp(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	default:
		return op // Eq and Ne are symmetric
	}
}

// vecOperand classifies a Compare operand for kernel selection.
type vecOperand struct {
	col   int  // schema offset when isCol
	isCol bool
	kind  types.Kind // column's schema kind when isCol
	val   types.Value
	isLit bool
}

func classifyOperand(e Expr, env *Env) (vecOperand, error) {
	switch n := e.(type) {
	case *Column:
		if i, ok := env.Schema.Index(n.key()); ok {
			return vecOperand{col: i, isCol: true, kind: env.Schema.Fields[i].Kind}, nil
		}
	case *Literal:
		return vecOperand{val: n.Val, isLit: true}, nil
	case *Param:
		v, err := n.Eval(nil, env)
		if err != nil {
			return vecOperand{}, err
		}
		return vecOperand{val: v, isLit: true}, nil
	}
	return vecOperand{}, nil
}

// compileVecCompare builds the typed kernel for one comparison, or its
// scalar fallback when the operand shapes or kinds aren't covered.
func compileVecCompare(n *Compare, env *Env) (VecPred, bool, error) {
	l, err := classifyOperand(n.L, env)
	if err != nil {
		return nil, false, err
	}
	r, err := classifyOperand(n.R, env)
	if err != nil {
		return nil, false, err
	}
	// The run-time Mixed fallback needs the node's scalar form either way.
	sc, err := Compile(n, env)
	if err != nil {
		return nil, false, err
	}
	switch {
	case l.isCol && r.isLit:
		if k := colConstKernel(l, r.val, n.Op, sc); k != nil {
			return k, true, nil
		}
	case l.isLit && r.isCol:
		if k := colConstKernel(r, l.val, flipOp(n.Op), sc); k != nil {
			return k, true, nil
		}
	case l.isCol && r.isCol:
		if k := colColKernel(l, r, n.Op, sc); k != nil {
			return k, true, nil
		}
	case l.isLit && r.isLit:
		v, err := n.Eval(nil, env)
		if err != nil {
			return nil, false, err
		}
		keep := v.IsTrue()
		return func(_ []types.Tuple, _ types.ColSource, sel []int32) ([]int32, error) {
			if keep {
				return sel, nil
			}
			return sel[:0], nil
		}, true, nil
	}
	k, err := scalarKernel(n, env)
	return k, false, err
}

// colConstKernel compiles col OP const for the covered kind pairs, or nil.
// Kind dispatch mirrors Value.Compare: int/int takes the exact integer
// path, any float involvement compares as float64, strings compare as
// strings; everything else (bools, statically mismatched kinds, NULL-kind
// schema columns) stays scalar.
func colConstKernel(c vecOperand, cv types.Value, op CmpOp, sc Compiled) VecPred {
	if cv.IsNull() {
		// Scalar semantics: a NULL operand makes the comparison false for
		// every row.
		return func(_ []types.Tuple, _ types.ColSource, sel []int32) ([]int32, error) {
			return sel[:0], nil
		}
	}
	m := acceptMask(op)
	ci := c.col
	switch {
	case c.kind == types.KindInt && cv.K == types.KindInt:
		k := cv.I()
		loop := totalConstLoop[int64](op)
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			v := cols.Col(ci)
			if v.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return loop(v.Ints, v.Null, sel, k), nil
		}
	case c.kind == types.KindInt && cv.K == types.KindFloat:
		// Value.Compare routes int-vs-float through float64; the per-row
		// conversion keeps this on the shared mask loop.
		f := cv.F()
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			v := cols.Col(ci)
			if v.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			xs, nulls := v.Ints, v.Null
			out := 0
			//dynopt:hotpath
			for _, r := range sel {
				if nulls[r] {
					continue
				}
				if m[cmp3Float(float64(xs[r]), f)] {
					sel[out] = r
					out++
				}
			}
			return sel[:out], nil
		}
	case c.kind == types.KindFloat && (cv.K == types.KindFloat || cv.K == types.KindInt):
		f, _ := cv.AsFloat()
		loop := constLoop[float64](op)
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			v := cols.Col(ci)
			if v.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return loop(v.Floats, v.Null, sel, f), nil
		}
	case c.kind == types.KindString && cv.K == types.KindString:
		s := cv.S
		loop := totalConstLoop[string](op)
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			v := cols.Col(ci)
			if v.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return loop(v.Strs, v.Null, sel, s), nil
		}
	}
	return nil
}

// colColKernel compiles col OP col for same-kind or numeric kind pairs.
func colColKernel(l, r vecOperand, op CmpOp, sc Compiled) VecPred {
	m := acceptMask(op)
	li, ri := l.col, r.col
	lInt, rInt := l.kind == types.KindInt, r.kind == types.KindInt
	lNum := lInt || l.kind == types.KindFloat
	rNum := rInt || r.kind == types.KindFloat
	switch {
	case lInt && rInt:
		loop := totalColLoop[int64](op)
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			lv, rv := cols.Col(li), cols.Col(ri)
			if lv.Mixed || rv.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return loop(lv.Ints, rv.Ints, lv.Null, rv.Null, sel), nil
		}
	case l.kind == types.KindFloat && r.kind == types.KindFloat:
		loop := colLoop[float64](op)
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			lv, rv := cols.Col(li), cols.Col(ri)
			if lv.Mixed || rv.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return loop(lv.Floats, rv.Floats, lv.Null, rv.Null, sel), nil
		}
	case lNum && rNum:
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			lv, rv := cols.Col(li), cols.Col(ri)
			if lv.Mixed || rv.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			ln, rn := lv.Null, rv.Null
			out := 0
			//dynopt:hotpath
			for _, r := range sel {
				if ln[r] || rn[r] {
					continue
				}
				if m[cmp3Float(numAt(lv, int(r)), numAt(rv, int(r)))] {
					sel[out] = r
					out++
				}
			}
			return sel[:out], nil
		}
	case l.kind == types.KindString && r.kind == types.KindString:
		loop := totalColLoop[string](op)
		return func(rows []types.Tuple, cols types.ColSource, sel []int32) ([]int32, error) {
			lv, rv := cols.Col(li), cols.Col(ri)
			if lv.Mixed || rv.Mixed {
				return scalarFilter(sc, rows, sel)
			}
			return loop(lv.Strs, rv.Strs, lv.Null, rv.Null, sel), nil
		}
	}
	return nil
}

// numAt reads row r of a numeric vector as float64 (Value.AsFloat).
func numAt(v *types.ColVec, r int) float64 {
	if v.Kind == types.KindInt {
		return float64(v.Ints[r])
	}
	return v.Floats[r]
}

// cmp3Float produces Value.Compare's three-way result for the mixed
// int/float mask loops as a mask index: 0 for less, 1 for equal, 2 for
// greater, with Compare's NaN behaviour — incomparable pairs land on
// "equal". The same-kind kernels use the specialized loops instead.
func cmp3Float(a, b float64) int {
	if a < b {
		return 0
	}
	if a > b {
		return 2
	}
	return 1
}
