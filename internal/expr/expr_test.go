package expr

import (
	"strings"
	"testing"

	"dynopt/internal/types"
)

func testEnv() *Env {
	return &Env{
		Schema: types.NewSchema(
			types.Field{Qualifier: "o", Name: "k", Kind: types.KindInt},
			types.Field{Qualifier: "o", Name: "d", Kind: types.KindString},
			types.Field{Qualifier: "o", Name: "p", Kind: types.KindFloat},
		),
		Params: map[string]types.Value{"year": types.Int(1998)},
		UDFs:   NewRegistry(),
	}
}

func testTuple() types.Tuple {
	return types.Tuple{types.Int(10), types.Str("1998-06-15"), types.Float(2.5)}
}

func eval(t *testing.T, e Expr) types.Value {
	t.Helper()
	v, err := e.Eval(testTuple(), testEnv())
	if err != nil {
		t.Fatalf("Eval(%s): %v", e.SQL(), err)
	}
	return v
}

func TestColumnEval(t *testing.T) {
	if v := eval(t, &Column{Qualifier: "o", Name: "k"}); v.I() != 10 {
		t.Errorf("o.k = %v", v)
	}
	// Bare name resolution.
	if v := eval(t, &Column{Name: "d"}); v.S != "1998-06-15" {
		t.Errorf("d = %v", v)
	}
	// Missing column errors.
	if _, err := (&Column{Name: "zz"}).Eval(testTuple(), testEnv()); err == nil {
		t.Error("missing column did not error")
	}
}

func TestLiteralParam(t *testing.T) {
	if v := eval(t, &Literal{Val: types.Int(7)}); v.I() != 7 {
		t.Errorf("literal = %v", v)
	}
	if v := eval(t, &Param{Name: "year"}); v.I() != 1998 {
		t.Errorf("param = %v", v)
	}
	if _, err := (&Param{Name: "missing"}).Eval(testTuple(), testEnv()); err == nil {
		t.Error("unbound param did not error")
	}
	env := testEnv()
	env.Params = nil
	if _, err := (&Param{Name: "year"}).Eval(testTuple(), env); err == nil {
		t.Error("nil params did not error")
	}
}

func TestCompareOps(t *testing.T) {
	k := &Column{Qualifier: "o", Name: "k"} // = 10
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{CmpEq, 10, true}, {CmpEq, 9, false},
		{CmpNe, 9, true}, {CmpNe, 10, false},
		{CmpLt, 11, true}, {CmpLt, 10, false},
		{CmpLe, 10, true}, {CmpLe, 9, false},
		{CmpGt, 9, true}, {CmpGt, 10, false},
		{CmpGe, 10, true}, {CmpGe, 11, false},
	}
	for _, c := range cases {
		e := &Compare{Op: c.op, L: k, R: &Literal{Val: types.Int(c.rhs)}}
		if got := eval(t, e).IsTrue(); got != c.want {
			t.Errorf("10 %s %d = %v, want %v", c.op, c.rhs, got, c.want)
		}
	}
}

func TestCompareNullIsFalse(t *testing.T) {
	e := &Compare{Op: CmpEq, L: &Literal{Val: types.Null()}, R: &Literal{Val: types.Null()}}
	if eval(t, e).IsTrue() {
		t.Error("NULL = NULL evaluated true")
	}
}

func TestBetween(t *testing.T) {
	k := &Column{Qualifier: "o", Name: "k"}
	in := &Between{X: k, Lo: &Literal{Val: types.Int(5)}, Hi: &Literal{Val: types.Int(15)}}
	out := &Between{X: k, Lo: &Literal{Val: types.Int(11)}, Hi: &Literal{Val: types.Int(15)}}
	edge := &Between{X: k, Lo: &Literal{Val: types.Int(10)}, Hi: &Literal{Val: types.Int(10)}}
	if !eval(t, in).IsTrue() || eval(t, out).IsTrue() || !eval(t, edge).IsTrue() {
		t.Error("BETWEEN semantics wrong")
	}
}

func TestBooleanConnectives(t *testing.T) {
	tr := &Literal{Val: types.Bool(true)}
	fa := &Literal{Val: types.Bool(false)}
	if !eval(t, &And{Kids: []Expr{tr, tr}}).IsTrue() {
		t.Error("true AND true")
	}
	if eval(t, &And{Kids: []Expr{tr, fa}}).IsTrue() {
		t.Error("true AND false")
	}
	if !eval(t, &Or{Kids: []Expr{fa, tr}}).IsTrue() {
		t.Error("false OR true")
	}
	if eval(t, &Or{Kids: []Expr{fa, fa}}).IsTrue() {
		t.Error("false OR false")
	}
	if !eval(t, &Not{Kid: fa}).IsTrue() || eval(t, &Not{Kid: tr}).IsTrue() {
		t.Error("NOT semantics")
	}
}

func TestArith(t *testing.T) {
	two := &Literal{Val: types.Int(2)}
	three := &Literal{Val: types.Int(3)}
	cases := []struct {
		op   ArithOp
		want int64
	}{
		{ArithAdd, 5}, {ArithSub, -1}, {ArithMul, 6}, {ArithDiv, 0},
	}
	for _, c := range cases {
		v := eval(t, &Arith{Op: c.op, L: two, R: three})
		if got, _ := v.AsInt(); got != c.want {
			t.Errorf("2 %s 3 = %v, want %d", c.op, v, c.want)
		}
	}
	// Float promotion.
	v := eval(t, &Arith{Op: ArithMul, L: &Column{Name: "p"}, R: two})
	if f, _ := v.AsFloat(); f != 5.0 {
		t.Errorf("2.5*2 = %v", v)
	}
	// Division by zero.
	if _, err := (&Arith{Op: ArithDiv, L: two, R: &Literal{Val: types.Int(0)}}).Eval(testTuple(), testEnv()); err == nil {
		t.Error("int division by zero did not error")
	}
	if _, err := (&Arith{Op: ArithDiv, L: two, R: &Literal{Val: types.Float(0)}}).Eval(testTuple(), testEnv()); err == nil {
		t.Error("float division by zero did not error")
	}
	// Non-numeric.
	if _, err := (&Arith{Op: ArithAdd, L: &Column{Name: "d"}, R: two}).Eval(testTuple(), testEnv()); err == nil {
		t.Error("string arithmetic did not error")
	}
}

func TestCallBuiltins(t *testing.T) {
	y := &Call{Name: "myyear", Args: []Expr{&Column{Name: "d"}}}
	if v := eval(t, y); v.I() != 1998 {
		t.Errorf("myyear = %v", v)
	}
	s := &Call{Name: "mysub", Args: []Expr{&Literal{Val: types.Str("Brand#32")}}}
	if v := eval(t, s); v.S != "#3" {
		t.Errorf("mysub = %v", v)
	}
	r := &Call{Name: "myrand", Args: []Expr{&Literal{Val: types.Int(1998)}, &Literal{Val: types.Int(2000)}}}
	v1 := eval(t, r)
	v2 := eval(t, r)
	if v1.I() < 1998 || v1.I() > 2000 {
		t.Errorf("myrand out of range: %v", v1)
	}
	if v1.I() != v2.I() {
		t.Error("myrand not deterministic per bounds")
	}
	if _, err := (&Call{Name: "nope"}).Eval(testTuple(), testEnv()); err == nil {
		t.Error("unknown UDF did not error")
	}
}

func TestUDFRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(UDF{}); err == nil {
		t.Error("empty UDF registered")
	}
	err := r.Register(UDF{Name: "Twice", Fn: func(a []types.Value) (types.Value, error) {
		return types.Int(a[0].I() * 2), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("twice"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := r.Lookup("TWICE"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	names := r.Names()
	found := false
	for _, n := range names {
		if n == "twice" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v missing twice", names)
	}
}

func TestSQLRendering(t *testing.T) {
	e := &And{Kids: []Expr{
		&Compare{Op: CmpEq, L: &Column{Qualifier: "o", Name: "k"}, R: &Param{Name: "x"}},
		&Between{X: &Column{Name: "p"}, Lo: &Literal{Val: types.Int(1)}, Hi: &Literal{Val: types.Int(2)}},
		&Not{Kid: &Call{Name: "udf", Args: []Expr{&Column{Name: "d"}}}},
	}}
	got := e.SQL()
	for _, want := range []string{"o.k = $x", "p BETWEEN 1 AND 2", "NOT (udf(d))"} {
		if !strings.Contains(got, want) {
			t.Errorf("SQL() = %q missing %q", got, want)
		}
	}
	o := &Or{Kids: []Expr{&Literal{Val: types.Bool(true)}, &Literal{Val: types.Bool(false)}}}
	if !strings.Contains(o.SQL(), " OR ") {
		t.Errorf("Or SQL = %q", o.SQL())
	}
	a := &Arith{Op: ArithDiv, L: &Literal{Val: types.Int(4)}, R: &Literal{Val: types.Int(2)}}
	if a.SQL() != "(4 / 2)" {
		t.Errorf("Arith SQL = %q", a.SQL())
	}
}

func TestMyyearEdgeCases(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("myyear")
	if _, err := f.Fn([]types.Value{types.Str("ab")}); err == nil {
		t.Error("short date did not error")
	}
	if _, err := f.Fn([]types.Value{types.Str("abcd-01-01")}); err == nil {
		t.Error("non-digit year did not error")
	}
	if v, err := f.Fn([]types.Value{types.Null()}); err != nil || !v.IsNull() {
		t.Error("NULL input should pass through")
	}
	if _, err := f.Fn(nil); err == nil {
		t.Error("arity error not raised")
	}
}

func TestMysubEdgeCases(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("mysub")
	if v, _ := f.Fn([]types.Value{types.Str("nohash")}); v.S != "" {
		t.Errorf("mysub without # = %v", v)
	}
	if _, err := f.Fn([]types.Value{types.Int(3)}); err == nil {
		t.Error("non-string did not error")
	}
}
