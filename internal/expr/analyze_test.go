package expr

import (
	"math"
	"testing"

	"dynopt/internal/stats"
	"dynopt/internal/types"
)

func TestColumnsOfAndQualifiers(t *testing.T) {
	e := &And{Kids: []Expr{
		&Compare{Op: CmpEq, L: &Column{Qualifier: "a", Name: "x"}, R: &Column{Qualifier: "b", Name: "y"}},
		&Call{Name: "f", Args: []Expr{&Column{Qualifier: "a", Name: "z"}}},
	}}
	cols := ColumnsOf(e)
	if len(cols) != 3 {
		t.Fatalf("ColumnsOf = %d cols", len(cols))
	}
	qs := QualifiersOf(e)
	if !qs["a"] || !qs["b"] || len(qs) != 2 {
		t.Errorf("QualifiersOf = %v", qs)
	}
}

func TestIsComplex(t *testing.T) {
	simple := &Compare{Op: CmpEq, L: &Column{Name: "x"}, R: &Literal{Val: types.Int(1)}}
	udf := &Compare{Op: CmpEq, L: &Call{Name: "f", Args: []Expr{&Column{Name: "x"}}}, R: &Literal{Val: types.Int(1)}}
	param := &Compare{Op: CmpEq, L: &Column{Name: "x"}, R: &Param{Name: "p"}}
	if IsComplex(simple) {
		t.Error("simple predicate reported complex")
	}
	if !IsComplex(udf) {
		t.Error("UDF predicate not complex")
	}
	if !IsComplex(param) {
		t.Error("param predicate not complex")
	}
}

func TestCompileMatchesEval(t *testing.T) {
	env := testEnv()
	exprs := []Expr{
		&Compare{Op: CmpGt, L: &Column{Qualifier: "o", Name: "k"}, R: &Literal{Val: types.Int(5)}},
		&Between{X: &Column{Name: "p"}, Lo: &Literal{Val: types.Float(1)}, Hi: &Literal{Val: types.Float(3)}},
		&And{Kids: []Expr{
			&Compare{Op: CmpEq, L: &Column{Name: "k"}, R: &Literal{Val: types.Int(10)}},
			&Not{Kid: &Compare{Op: CmpEq, L: &Column{Name: "d"}, R: &Literal{Val: types.Str("x")}}},
		}},
		&Or{Kids: []Expr{
			&Compare{Op: CmpLt, L: &Column{Name: "k"}, R: &Literal{Val: types.Int(0)}},
			&Compare{Op: CmpEq, L: &Param{Name: "year"}, R: &Literal{Val: types.Int(1998)}},
		}},
		&Compare{Op: CmpEq, L: &Call{Name: "myyear", Args: []Expr{&Column{Name: "d"}}}, R: &Param{Name: "year"}},
	}
	for _, e := range exprs {
		c, err := Compile(e, env)
		if err != nil {
			t.Fatalf("Compile(%s): %v", e.SQL(), err)
		}
		want, err1 := e.Eval(testTuple(), env)
		got, err2 := c(testTuple())
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%s: err mismatch %v vs %v", e.SQL(), err1, err2)
			continue
		}
		if err1 == nil && !want.Equal(got) {
			t.Errorf("%s: compiled %v, interpreted %v", e.SQL(), got, want)
		}
	}
}

func TestCompileUnboundParamErrors(t *testing.T) {
	env := testEnv()
	if _, err := Compile(&Param{Name: "nope"}, env); err == nil {
		t.Error("Compile of unbound param did not error")
	}
}

func TestCompileMissingColumnFallsBack(t *testing.T) {
	env := testEnv()
	c, err := Compile(&Column{Name: "missing"}, env)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := c(testTuple()); err == nil {
		t.Error("compiled missing column should error at eval")
	}
}

func uniformDS(t *testing.T, name string, n, distinct int) *stats.DatasetStats {
	t.Helper()
	ds := stats.NewDatasetStats(name)
	sch := types.NewSchema(types.Field{Name: "v", Kind: types.KindInt})
	for i := 0; i < n; i++ {
		ds.ObserveTuple(sch, types.Tuple{types.Int(int64(i % distinct))}, nil)
	}
	return ds
}

func TestStaticSelectivitySimplePredicate(t *testing.T) {
	ds := uniformDS(t, "t", 10000, 100)
	e := &Compare{Op: CmpEq, L: &Column{Name: "v"}, R: &Literal{Val: types.Int(5)}}
	got := StaticSelectivity(e, ds)
	if math.Abs(got-0.01) > 0.01 {
		t.Errorf("eq selectivity = %v, want ~0.01", got)
	}
	lt := &Compare{Op: CmpLt, L: &Column{Name: "v"}, R: &Literal{Val: types.Int(50)}}
	got = StaticSelectivity(lt, ds)
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("lt selectivity = %v, want ~0.5", got)
	}
	// Literal on the left flips the operator.
	ltFlip := &Compare{Op: CmpGt, L: &Literal{Val: types.Int(50)}, R: &Column{Name: "v"}}
	got2 := StaticSelectivity(ltFlip, ds)
	if math.Abs(got2-got) > 0.05 {
		t.Errorf("flipped literal selectivity %v != %v", got2, got)
	}
}

func TestStaticSelectivityIndependenceMultiplied(t *testing.T) {
	ds := uniformDS(t, "t", 10000, 100)
	one := &Compare{Op: CmpLt, L: &Column{Name: "v"}, R: &Literal{Val: types.Int(50)}}
	two := &And{Kids: []Expr{one, one}}
	s1 := StaticSelectivity(one, ds)
	s2 := StaticSelectivity(two, ds)
	if math.Abs(s2-s1*s1) > 1e-9 {
		t.Errorf("AND selectivity %v != %v^2 (independence)", s2, s1)
	}
	// This is exactly the estimate that correlated predicates break —
	// the true selectivity of (v<50 AND v<50) is s1, not s1².
}

func TestStaticSelectivityComplexUsesDefault(t *testing.T) {
	ds := uniformDS(t, "t", 1000, 10)
	udf := &Compare{Op: CmpEq, L: &Call{Name: "f", Args: []Expr{&Column{Name: "v"}}}, R: &Literal{Val: types.Str("#3")}}
	if got := StaticSelectivity(udf, ds); got != stats.DefaultUDFSelectivity {
		t.Errorf("UDF selectivity = %v, want default %v", got, stats.DefaultUDFSelectivity)
	}
	param := &Compare{Op: CmpEq, L: &Column{Name: "v"}, R: &Param{Name: "p"}}
	if got := StaticSelectivity(param, ds); got != stats.DefaultUDFSelectivity {
		t.Errorf("param selectivity = %v, want default", got)
	}
	bare := &Call{Name: "boolUDF", Args: []Expr{&Column{Name: "v"}}}
	if got := StaticSelectivity(bare, ds); got != stats.DefaultUDFSelectivity {
		t.Errorf("bare call selectivity = %v", got)
	}
}

func TestStaticSelectivityBetween(t *testing.T) {
	ds := uniformDS(t, "t", 10000, 100)
	b := &Between{X: &Column{Name: "v"}, Lo: &Literal{Val: types.Int(25)}, Hi: &Literal{Val: types.Int(74)}}
	got := StaticSelectivity(b, ds)
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("between selectivity = %v, want ~0.5", got)
	}
	// Complex BETWEEN → default.
	bc := &Between{X: &Column{Name: "v"}, Lo: &Param{Name: "lo"}, Hi: &Literal{Val: types.Int(74)}}
	if got := StaticSelectivity(bc, ds); got != stats.DefaultUDFSelectivity {
		t.Errorf("param between = %v", got)
	}
	// Non-numeric bounds → inequality default.
	bs := &Between{X: &Column{Name: "v"}, Lo: &Literal{Val: types.Str("a")}, Hi: &Literal{Val: types.Str("z")}}
	if got := StaticSelectivity(bs, ds); got != stats.DefaultIneqSelectivity {
		t.Errorf("string between = %v", got)
	}
}

func TestStaticSelectivityOrNot(t *testing.T) {
	ds := uniformDS(t, "t", 10000, 100)
	half := &Compare{Op: CmpLt, L: &Column{Name: "v"}, R: &Literal{Val: types.Int(50)}}
	or := &Or{Kids: []Expr{half, half}}
	got := StaticSelectivity(or, ds)
	want := 1 - 0.5*0.5
	if math.Abs(got-want) > 0.1 {
		t.Errorf("OR selectivity = %v, want ~%v", got, want)
	}
	not := &Not{Kid: half}
	if got := StaticSelectivity(not, ds); math.Abs(got-0.5) > 0.1 {
		t.Errorf("NOT selectivity = %v", got)
	}
}

func TestStaticSelectivityNoStats(t *testing.T) {
	e := &Compare{Op: CmpEq, L: &Column{Name: "v"}, R: &Literal{Val: types.Int(5)}}
	if got := StaticSelectivity(e, nil); got != stats.DefaultEqSelectivity {
		t.Errorf("nil-stats selectivity = %v", got)
	}
	colcol := &Compare{Op: CmpEq, L: &Column{Name: "a"}, R: &Column{Name: "b"}}
	if got := StaticSelectivity(colcol, nil); got != stats.DefaultEqSelectivity {
		t.Errorf("col=col selectivity = %v", got)
	}
}
