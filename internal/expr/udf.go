package expr

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dynopt/internal/types"
)

// UDF is a user-defined scalar function. Static optimizers cannot see
// through Fn — that opacity is the paper's motivating case for executing
// complex predicates before planning.
type UDF struct {
	Name string
	Fn   func(args []types.Value) (types.Value, error)
}

// Registry is a thread-safe UDF catalog.
type Registry struct {
	mu sync.RWMutex
	m  map[string]UDF
}

// NewRegistry returns a registry pre-loaded with the built-in workload UDFs.
func NewRegistry() *Registry {
	r := &Registry{m: map[string]UDF{}}
	registerBuiltins(r)
	return r
}

// Register installs (or replaces) a UDF. Names are case-insensitive.
func (r *Registry) Register(u UDF) error {
	if u.Name == "" || u.Fn == nil {
		return fmt.Errorf("expr: UDF needs a name and a function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[strings.ToLower(u.Name)] = u
	return nil
}

// Lookup finds a UDF by (case-insensitive) name.
func (r *Registry) Lookup(name string) (UDF, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.m[strings.ToLower(name)]
	return u, ok
}

// Names returns the registered UDF names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// registerBuiltins installs the UDFs the paper's modified queries use:
// myyear(date) for Q9's orders filter, mysub(brand) for Q9's part filter,
// and myrand(lo,hi) for Q50's parameterized dimension predicates. myrand is
// deterministic per (lo,hi) pair here — benchmark runs must be reproducible —
// while remaining opaque to static selectivity estimation, which is all the
// paper's usage requires.
func registerBuiltins(r *Registry) {
	must := func(u UDF) {
		if err := r.Register(u); err != nil {
			panic(err)
		}
	}
	must(UDF{
		Name: "myyear",
		// myyear('1998-07-21') = 1998.
		Fn: func(args []types.Value) (types.Value, error) {
			if len(args) != 1 {
				return types.Null(), fmt.Errorf("myyear: want 1 arg, got %d", len(args))
			}
			v := args[0]
			if v.IsNull() {
				return types.Null(), nil
			}
			if v.K != types.KindString || len(v.S) < 4 {
				return types.Null(), fmt.Errorf("myyear: want a date string, got %v", v)
			}
			var y int64
			for i := 0; i < 4; i++ {
				c := v.S[i]
				if c < '0' || c > '9' {
					return types.Null(), fmt.Errorf("myyear: malformed date %q", v.S)
				}
				y = y*10 + int64(c-'0')
			}
			return types.Int(y), nil
		},
	})
	must(UDF{
		Name: "mysub",
		// mysub('Brand#32') = '#3' — the brand-class prefix used by Q9's
		// part filter.
		Fn: func(args []types.Value) (types.Value, error) {
			if len(args) != 1 {
				return types.Null(), fmt.Errorf("mysub: want 1 arg, got %d", len(args))
			}
			v := args[0]
			if v.IsNull() {
				return types.Null(), nil
			}
			if v.K != types.KindString {
				return types.Null(), fmt.Errorf("mysub: want a string, got %v", v)
			}
			i := strings.IndexByte(v.S, '#')
			if i < 0 || i+2 > len(v.S) {
				return types.Str(""), nil
			}
			end := i + 2
			if end > len(v.S) {
				end = len(v.S)
			}
			return types.Str(v.S[i:end]), nil
		},
	})
	must(UDF{
		Name: "myrand",
		// myrand(lo, hi) picks a deterministic pseudo-random integer in
		// [lo, hi] via splitmix64 of the bounds, mirroring the paper's
		// myrand(1998,2000) / myrand(8,10) parameterized predicates.
		Fn: func(args []types.Value) (types.Value, error) {
			if len(args) != 2 {
				return types.Null(), fmt.Errorf("myrand: want 2 args, got %d", len(args))
			}
			lo, ok1 := args[0].AsInt()
			hi, ok2 := args[1].AsInt()
			if !ok1 || !ok2 {
				return types.Null(), fmt.Errorf("myrand: want numeric bounds, got %v, %v", args[0], args[1])
			}
			if hi < lo {
				lo, hi = hi, lo
			}
			span := hi - lo + 1
			x := splitmix64(uint64(lo)*0x9e3779b97f4a7c15 ^ uint64(hi))
			return types.Int(lo + int64(x%uint64(span))), nil
		},
	})
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
