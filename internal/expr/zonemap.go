package expr

import "dynopt/internal/types"

// Zone-map range extraction: the conservative analysis that turns a pushed-
// down filter into per-column value ranges the paged store can prune whole
// pages with before any decode. Only shapes whose semantics are exactly
// "row passes ⇒ column value lies in [Lo, Hi]" are extracted — top-level AND
// conjuncts comparing one column against one constant (literals, or bound
// parameters), plus BETWEEN. Everything else (OR, NOT, arithmetic, UDFs,
// unresolved columns) contributes no range, which can only make pruning less
// aggressive, never wrong: a page is skipped only when its zone map proves
// every row would fail a conjunct the whole predicate ANDs over.
//
// NULL rows need no care here: a comparison or BETWEEN conjunct evaluates to
// false for NULL inputs, so rows outside the zone map's non-NULL min/max
// could never have passed the filter anyway.

// ColRange is one extracted constraint on a column: the filter can only pass
// rows whose column value v satisfies Lo ≤ v ≤ Hi under types.Value.Compare.
// An unbounded side is marked by HasLo/HasHi.
type ColRange struct {
	Col          int // column offset in the scan's qualified schema
	Lo, Hi       types.Value
	HasLo, HasHi bool
}

// ZoneRanges extracts the prunable column ranges of filter against env's
// schema. A nil filter or a filter with no extractable conjuncts returns nil.
func ZoneRanges(filter Expr, env *Env) []ColRange {
	if filter == nil {
		return nil
	}
	var out []ColRange
	collectRanges(filter, env, &out)
	return out
}

// collectRanges walks top-level conjuncts only: under an AND every conjunct
// must independently hold, so each contributes its own range.
func collectRanges(e Expr, env *Env, out *[]ColRange) {
	switch n := e.(type) {
	case *And:
		for _, k := range n.Kids {
			collectRanges(k, env, out)
		}
	case *Compare:
		if r, ok := rangeFromCompare(n, env); ok {
			*out = append(*out, r)
		}
	case *Between:
		col, ok := columnIndex(n.X, env)
		if !ok {
			return
		}
		lo, lok := constValue(n.Lo, env)
		hi, hok := constValue(n.Hi, env)
		if !lok || !hok || lo.IsNull() || hi.IsNull() {
			return
		}
		*out = append(*out, ColRange{Col: col, Lo: lo, Hi: hi, HasLo: true, HasHi: true})
	}
}

// rangeFromCompare extracts a range from col <op> const or const <op> col.
// Equality yields a point range; != yields nothing (it excludes one value,
// which a min/max zone map cannot exploit safely).
func rangeFromCompare(c *Compare, env *Env) (ColRange, bool) {
	op := c.Op
	col, ok := columnIndex(c.L, env)
	v, vok := constValue(c.R, env)
	if !ok || !vok {
		// Try the mirrored form: const <op> col flips the operator.
		col, ok = columnIndex(c.R, env)
		v, vok = constValue(c.L, env)
		if !ok || !vok {
			return ColRange{}, false
		}
		switch op {
		case CmpLt:
			op = CmpGt
		case CmpLe:
			op = CmpGe
		case CmpGt:
			op = CmpLt
		case CmpGe:
			op = CmpLe
		}
	}
	if v.IsNull() {
		return ColRange{}, false
	}
	r := ColRange{Col: col}
	switch op {
	case CmpEq:
		r.Lo, r.Hi, r.HasLo, r.HasHi = v, v, true, true
	case CmpLt, CmpLe:
		// Zone maps prune on Compare order only, so < and <= share the bound:
		// pruning keeps any page whose min ≤ v, which is safe for both.
		r.Hi, r.HasHi = v, true
	case CmpGt, CmpGe:
		r.Lo, r.HasLo = v, true
	default:
		return ColRange{}, false
	}
	return r, true
}

// constValue resolves e as a constant: a literal, or a parameter bound in
// env (parameters are fixed for the whole query, so they prune like
// literals).
func constValue(e Expr, env *Env) (types.Value, bool) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, true
	case *Param:
		if env.Params == nil {
			return types.Value{}, false
		}
		v, ok := env.Params[n.Name]
		return v, ok
	}
	return types.Value{}, false
}
