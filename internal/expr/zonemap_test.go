package expr

import (
	"reflect"
	"testing"

	"dynopt/internal/types"
)

func zoneEnv() *Env {
	return &Env{
		Schema: &types.Schema{Fields: []types.Field{
			{Name: "a", Kind: types.KindInt},
			{Name: "b", Kind: types.KindInt},
		}},
		Params: map[string]types.Value{"p": types.Int(9)},
	}
}

func col(n string) Expr            { return &Column{Name: n} }
func lit(i int64) Expr             { return &Literal{Val: types.Int(i)} }
func cmp(op CmpOp, l, r Expr) Expr { return &Compare{Op: op, L: l, R: r} }

func TestZoneRangesExtraction(t *testing.T) {
	env := zoneEnv()
	for _, tc := range []struct {
		name   string
		filter Expr
		want   []ColRange
	}{
		{"nil", nil, nil},
		{"eq", cmp(CmpEq, col("a"), lit(5)),
			[]ColRange{{Col: 0, Lo: types.Int(5), Hi: types.Int(5), HasLo: true, HasHi: true}}},
		{"lt", cmp(CmpLt, col("a"), lit(5)),
			[]ColRange{{Col: 0, Hi: types.Int(5), HasHi: true}}},
		{"ge", cmp(CmpGe, col("b"), lit(2)),
			[]ColRange{{Col: 1, Lo: types.Int(2), HasLo: true}}},
		{"mirrored", cmp(CmpLt, lit(5), col("a")), // 5 < a  ⇒  a > 5
			[]ColRange{{Col: 0, Lo: types.Int(5), HasLo: true}}},
		{"between", &Between{X: col("a"), Lo: lit(1), Hi: lit(3)},
			[]ColRange{{Col: 0, Lo: types.Int(1), Hi: types.Int(3), HasLo: true, HasHi: true}}},
		{"param", cmp(CmpLe, col("a"), &Param{Name: "p"}),
			[]ColRange{{Col: 0, Hi: types.Int(9), HasHi: true}}},
		{"and", &And{Kids: []Expr{
			cmp(CmpGt, col("a"), lit(1)),
			cmp(CmpLt, col("b"), lit(7)),
		}}, []ColRange{
			{Col: 0, Lo: types.Int(1), HasLo: true},
			{Col: 1, Hi: types.Int(7), HasHi: true},
		}},
		// Shapes with no sound range: != excludes one point, OR is not a
		// conjunct, NULL constants compare to nothing, unknown columns and
		// unbound params cannot anchor a range.
		{"ne", cmp(CmpNe, col("a"), lit(5)), nil},
		{"or", &Or{Kids: []Expr{cmp(CmpEq, col("a"), lit(1)), cmp(CmpEq, col("a"), lit(2))}}, nil},
		{"null-const", cmp(CmpEq, col("a"), &Literal{Val: types.Null()}), nil},
		{"unknown-col", cmp(CmpEq, col("zz"), lit(1)), nil},
		{"unbound-param", cmp(CmpEq, col("a"), &Param{Name: "nope"}), nil},
		{"col-vs-col", cmp(CmpLt, col("a"), col("b")), nil},
		// A mixed AND still yields the extractable conjuncts.
		{"and-partial", &And{Kids: []Expr{
			cmp(CmpNe, col("a"), lit(0)),
			cmp(CmpEq, col("b"), lit(4)),
		}}, []ColRange{{Col: 1, Lo: types.Int(4), Hi: types.Int(4), HasLo: true, HasHi: true}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := ZoneRanges(tc.filter, env)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("ZoneRanges = %+v, want %+v", got, tc.want)
			}
		})
	}
}
