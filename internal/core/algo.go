package core

import (
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/storage"
)

// AlgoConfig parameterizes the JoinAlgorithmRule of §6.1.2.
type AlgoConfig struct {
	// BroadcastThresholdBytes is the maximum estimated size of a join input
	// that may be replicated to every node (per-node memory budget). The
	// paper's broadcasts appear at small scale factors and disappear at
	// SF 1000; a fixed threshold against growing data reproduces that.
	BroadcastThresholdBytes int64
	// EnableINLJ allows the indexed nested-loop join to be considered
	// (Figure 8's experiments); off for the Figure 7 runs.
	EnableINLJ bool
	// SpillBudgetBytes, when positive, is the per-node memory budget of a
	// real-spilling execution (Config.SpillDir): a broadcast whose build
	// side is estimated over it is downgraded to a partitioned hash join —
	// replicated copies cannot spill without losing matches, and the engine
	// would fall back at runtime anyway; deciding here keeps every
	// planner's reported plan honest. Zero (simulated mode) keeps the rule
	// unchanged.
	SpillBudgetBytes int64
}

// DefaultAlgoConfig mirrors the evaluation setup: broadcasts allowed up to a
// per-node budget (128 KiB at this repo's scaled-down data sizes — chosen so
// small and filtered dimensions broadcast at low scale factors and stop at
// the largest, the SF-1000 behaviour of §7.3), INLJ off unless the
// experiment enables it.
func DefaultAlgoConfig() AlgoConfig {
	return AlgoConfig{BroadcastThresholdBytes: 128 << 10, EnableINLJ: false}
}

// algoInput summarizes one join input for the algorithm rule.
type algoInput struct {
	estRows  int64
	estBytes int64
	filtered bool
	// base dataset carrying a secondary index on its first join key, and
	// usable as the INLJ inner (a leaf; intermediates lose their indexes).
	indexedBase bool
	// pages is the real page count of the input's disk-native backend (0 for
	// resident datasets). When positive, the rule can compare a full scan's
	// page reads against an index probe's — storage-level access-path
	// selection rather than the size heuristic alone.
	pages int64
}

func sideFromTable(info *TableInfo, ds *storage.Dataset, firstKey string) algoInput {
	return algoInput{
		estRows:     info.EstRows,
		estBytes:    info.EstBytes,
		filtered:    info.Filtered,
		indexedBase: info.IsBase && ds.HasIndex(firstKey),
		pages:       info.Pages,
	}
}

// ChooseAlgo is the JoinAlgorithmRule: pick the physical algorithm and build
// side for one join given both inputs' estimates.
//
// Rules, in order (§6.1.2):
//  1. Indexed nested-loop: one side is small enough to broadcast AND is
//     filtered (otherwise scanning the inner once beats per-row index
//     lookups — the Q8 nation case), AND the other side is a base dataset
//     with a secondary index on its join key. When the inner is a paged
//     dataset the filter heuristic is replaced by real arithmetic: an index
//     probe decodes at most one page per binding, a scan-plus-hash-probe
//     decodes every page, so a binding set smaller than the inner's page
//     count makes index seeks the cheaper access path even unfiltered.
//     Resident inners (pages == 0) keep the original heuristic exactly.
//  2. Broadcast: one side's estimated bytes fit the threshold; replicate it
//     and keep the big side in place.
//  3. Hash: repartition both; build on the smaller side.
//
// The returned buildLeft designates the broadcast/build side.
func ChooseAlgo(cfg AlgoConfig, left, right algoInput) (plan.Algo, bool) {
	if cfg.EnableINLJ {
		if left.estBytes <= cfg.BroadcastThresholdBytes && right.indexedBase &&
			(left.filtered || indexBeatsScannedPages(left.estRows, right.pages)) {
			return plan.AlgoIndexNL, true
		}
		if right.estBytes <= cfg.BroadcastThresholdBytes && left.indexedBase &&
			(right.filtered || indexBeatsScannedPages(right.estRows, left.pages)) {
			return plan.AlgoIndexNL, false
		}
	}
	if left.estBytes <= cfg.BroadcastThresholdBytes || right.estBytes <= cfg.BroadcastThresholdBytes {
		buildLeft := left.estBytes <= right.estBytes
		bb := right.estBytes
		if buildLeft {
			bb = left.estBytes
		}
		if cfg.SpillBudgetBytes > 0 && bb > cfg.SpillBudgetBytes {
			// Real memory governance: the build copy would not stay
			// resident on any node; join partitioned instead.
			return plan.AlgoHash, left.estRows <= right.estRows
		}
		return plan.AlgoBroadcast, buildLeft
	}
	return plan.AlgoHash, left.estRows <= right.estRows
}

// indexBeatsScannedPages is the paged-inner access-path comparison: with a
// real page count in hand, outerRows index probes touch at most outerRows
// pages (each seek lands on the page holding its matches; the per-partition
// decoded-page window absorbs clustered keys), while a hash probe's inner
// scan decodes all of them. Strictly fewer probe-side page touches than
// scan pages picks the index. pages == 0 (resident inner) declines, keeping
// the resident rule byte-identical.
func indexBeatsScannedPages(outerRows, pages int64) bool {
	return pages > 0 && outerRows > 0 && outerRows < pages
}

// chooseAlgoForEdge resolves the datasets behind an edge's aliases and runs
// the rule.
func (e *Estimator) chooseAlgoForEdge(cfg AlgoConfig, edge *sqlpp.JoinEdge, tables Tables) (plan.Algo, bool, error) {
	lt := tables[edge.LeftAlias]
	rt := tables[edge.RightAlias]
	lds, err := datasetOf(e.Cat, lt)
	if err != nil {
		return 0, false, err
	}
	rds, err := datasetOf(e.Cat, rt)
	if err != nil {
		return 0, false, err
	}
	algo, buildLeft := ChooseAlgo(cfg,
		sideFromTable(lt, lds, edge.LeftFields[0]),
		sideFromTable(rt, rds, edge.RightFields[0]))
	return algo, buildLeft, nil
}
