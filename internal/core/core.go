package core
