package core

import (
	"errors"
	"fmt"
	"sort"

	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/faults"
	"dynopt/internal/memo"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
)

// ShapeKey derives the plan-memo key for an analyzed query under a
// strategy configuration. The shape lifts literals and parameters
// (sqlpp.ShapeOf); the config tag keeps plans recorded under one planning
// universe from replaying under another — a different broadcast threshold,
// INLJ setting, spill budget, re-optimization budget (a budget-truncated
// convergence is not the unlimited loop's plan), or phase toggle occupies
// its own slot.
func ShapeKey(g *sqlpp.Graph, cfg Config) string {
	return fmt.Sprintf("%s|bt=%d inlj=%t spill=%d reopts=%d pd=%t/%t loop=%t online=%t naive=%t",
		sqlpp.ShapeOf(g.Query),
		cfg.Algo.BroadcastThresholdBytes, cfg.Algo.EnableINLJ, cfg.Algo.SpillBudgetBytes,
		cfg.MaxReopts, cfg.PushDown, cfg.PushDownAll, cfg.ReoptLoop, cfg.OnlineStats, cfg.CardinalityOnly)
}

// tryReplay is the memo front door of one dynamic run: compute the shape
// key, refuse stale entries, replay a fresh one under guardrails, and arm
// recording. Returns a non-nil result when the replay completed the query
// (r.CacheHit set); otherwise the caller continues the dynamic loop from
// whatever state the (possibly partial) replay left in rs, and recording is
// armed so the run's convergence re-records the shape.
func (d *Dynamic) tryReplay(rs *runState, r *Report) (*engine.Result, error) {
	keyCfg := d.Cfg
	keyCfg.Algo = rs.cfg // includes the real-spill budget adjustment
	key := ShapeKey(rs.g, keyCfg)
	rs.memoOpts = d.Memo.Opts()
	// Datasets and Fingerprint are filled at record() time from memoGraph:
	// a fully replayed query discards rec, so the registry walk would be
	// wasted exactly on the hot path. Base statistics are immutable and the
	// epoch guard refuses DDL-straddling recordings, so late capture is
	// equivalent.
	rs.rec = &memo.Entry{Shape: key, Born: d.Memo.Epoch()}
	rs.memoGraph = rs.g
	e := d.Memo.Get(key)
	if e == nil {
		return nil, nil
	}
	if reason, stale := e.Fingerprint.Stale(rs.est.Reg, rs.memoOpts.StatsDriftTolerance); stale {
		// Stale-fingerprint replay is refused and the dead entry evicted
		// eagerly (only this entry: a concurrently re-recorded fresh one
		// under the same shape survives). The statistics the plan was
		// derived from no longer describe the data.
		d.Memo.RemoveEntry(e)
		r.StagePlans = append(r.StagePlans, "memo: stale fingerprint ("+reason+"), re-optimizing")
		return nil, nil
	}
	if reason, stale := e.Fingerprint.StalePages(func(name string) int64 {
		return pagesOf(rs.ctx, name)
	}); stale {
		// The storage layout moved — a dataset was converted to paged form
		// (or re-paged) since the plan was recorded. Its access-path
		// decisions compared binding sets against page counts that no longer
		// exist, so the plan must be re-derived.
		d.Memo.RemoveEntry(e)
		r.StagePlans = append(r.StagePlans, "memo: stale storage layout ("+reason+"), re-optimizing")
		return nil, nil
	}
	if err := rs.ctx.Faults.Fire(faults.Point("memo.replay")); err != nil {
		// A faulted replay degrades exactly like a guardrail breach: the
		// dynamic loop runs the query from scratch; nothing was executed yet.
		r.StagePlans = append(r.StagePlans, "memo: replay faulted, re-optimizing: "+err.Error())
		r.ReplayFellBack = true
		d.Memo.NoteFallback()
		return nil, nil
	}
	res, err := rs.replayPlan(e)
	if err != nil {
		return nil, err
	}
	if res != nil {
		r.CacheHit = true
		return res, nil
	}
	r.ReplayFellBack = true
	d.Memo.NoteFallback()
	return nil, nil
}

// record publishes the recorded entry after a successful non-replayed (or
// fallen-back) run. Runs whose final job never materialized a joinable plan
// (single-table queries) record nothing.
func (d *Dynamic) record(rs *runState, res *engine.Result, err error) (*engine.Result, error) {
	if err == nil && d.Memo != nil && rs.rec != nil && rs.rec.Final != nil {
		rs.rec.Datasets = datasetsOfGraph(rs.memoGraph)
		rs.rec.Fingerprint = stats.FingerprintOf(rs.est.Reg, fingerprintFields(rs.memoGraph))
		// Pin the storage layout the plan's access paths were chosen
		// against: page counts come from the catalog, not the statistics
		// registry, so they are stamped here.
		for name, fp := range rs.rec.Fingerprint {
			fp.Pages = pagesOf(rs.ctx, name)
			rs.rec.Fingerprint[name] = fp
		}
		d.Memo.Put(rs.rec)
	}
	return res, err
}

// replayPlan drives a memoized plan: the staged prefix executes as fully
// pipelined jobs with zero blocking re-optimization points, each stage's
// sink cardinality checked against the entry's tolerance band, then the
// remembered final job runs. A nil, nil return means the replay aborted —
// guardrail breach or structural mismatch — with rs left exactly at the
// last materialized intermediate, so the dynamic loop resumes from there
// and no executed work is wasted.
func (rs *runState) replayPlan(e *memo.Entry) (*engine.Result, error) {
	rs.replay = true
	defer func() { rs.replay = false }()
	rs.report.StagePlans = append(rs.report.StagePlans,
		fmt.Sprintf("memo: replaying converged plan (%d staged jobs + final)", len(e.Stages)))

	for i, st := range e.Stages {
		if err := rs.ctx.Err(); err != nil {
			return nil, err
		}
		switch st.Kind {
		case memo.StagePushDown:
			if _, ok := rs.g.Tables[st.Alias]; !ok {
				return nil, rs.abandonReplay(i, "alias %q not in current graph", st.Alias)
			}
			if err := rs.executePushDown(st.Alias); err != nil {
				if errors.Is(err, faults.ErrCorrupt) {
					return nil, rs.abandonReplay(i, "corrupt spill run during replay: %v", err)
				}
				return nil, err
			}
		case memo.StageJoin:
			edge, ok := rs.g.JoinFor(st.LeftAlias, st.RightAlias)
			if !ok || edge.LeftAlias != st.LeftAlias || edge.RightAlias != st.RightAlias {
				return nil, rs.abandonReplay(i, "join %s⋈%s not in current graph", st.LeftAlias, st.RightAlias)
			}
			tables, err := rs.currentTables()
			if err != nil {
				return nil, err
			}
			if err := rs.executeJoinStage(edge, st.ObservedRows, tables, false, st.Algo, st.BuildLeft); err != nil {
				if errors.Is(err, faults.ErrCorrupt) {
					// A corrupt spill run that survived the join's rebuild
					// attempt poisons only this stage: the dynamic loop re-plans
					// and re-executes from the last intact intermediate instead
					// of failing the query.
					return nil, rs.abandonReplay(i, "corrupt spill run during replay: %v", err)
				}
				return nil, err
			}
		default:
			return nil, rs.abandonReplay(i, "unknown stage kind %d", st.Kind)
		}
		if !rs.memoOpts.WithinBand(st.ObservedRows, rs.lastStageRows) {
			// The cardinality guardrail: reality left the memo's band, so
			// stop trusting the remembered order. The stage's materialized
			// intermediate stays — the dynamic loop restarts from it.
			return nil, rs.abandonReplay(i, "observed %d rows vs recorded %d, outside tolerance band",
				rs.lastStageRows, st.ObservedRows)
		}
	}

	tables, err := rs.currentTables()
	if err != nil {
		return nil, err
	}
	node, err := rs.nodeFromMemo(e.Final, tables)
	if err != nil {
		return nil, rs.abandonReplay(len(e.Stages), "final job: %v", err)
	}
	res, err := rs.executeFinalTree(node, tables)
	if err != nil && errors.Is(err, faults.ErrCorrupt) {
		return nil, rs.abandonReplay(len(e.Stages), "corrupt spill run during replay: %v", err)
	}
	return res, err
}

// abandonReplay notes why a replay stopped and returns nil: the caller
// treats a nil result as "fall back to the dynamic loop from here".
func (rs *runState) abandonReplay(stage int, format string, args ...any) error {
	rs.report.StagePlans = append(rs.report.StagePlans,
		fmt.Sprintf("memo: fallback at staged job %d: %s", stage, fmt.Sprintf(format, args...)))
	return nil
}

// nodeFromMemo rebinds a recorded final job to the current tables: leaves
// resolve their alias against this run's graph (base datasets or the temps
// the replayed prefix just materialized), joins keep the remembered
// algorithm and build side.
func (rs *runState) nodeFromMemo(m *memo.Node, tables Tables) (*plan.Node, error) {
	if m == nil {
		return nil, fmt.Errorf("no final job recorded")
	}
	if m.Alias != "" {
		info := tables[m.Alias]
		if info == nil {
			return nil, fmt.Errorf("alias %q not in current graph", m.Alias)
		}
		return rs.leafNode(info), nil
	}
	left, err := rs.nodeFromMemo(m.Left, tables)
	if err != nil {
		return nil, err
	}
	right, err := rs.nodeFromMemo(m.Right, tables)
	if err != nil {
		return nil, err
	}
	node := plan.NewJoin(&plan.Join{
		Left: left, Right: right,
		LeftKeys:  append([]string(nil), m.LeftKeys...),
		RightKeys: append([]string(nil), m.RightKeys...),
		Algo:      m.Algo, BuildLeft: m.BuildLeft,
	})
	node.EstRows = m.EstRows
	return node, nil
}

// memoNodeOf records a final-job plan structurally (aliases and keys only:
// datasets behind temp leaves are per-query names and must rebind at
// replay).
func memoNodeOf(n *plan.Node) *memo.Node {
	if n == nil {
		return nil
	}
	if n.Leaf != nil {
		return &memo.Node{Alias: n.Leaf.Alias}
	}
	j := n.Join
	return &memo.Node{
		Left: memoNodeOf(j.Left), Right: memoNodeOf(j.Right),
		LeftKeys:  append([]string(nil), j.LeftKeys...),
		RightKeys: append([]string(nil), j.RightKeys...),
		Algo:      j.Algo, BuildLeft: j.BuildLeft,
		EstRows: n.EstRows,
	}
}

// pagesOf returns the current physical page count of a catalog dataset
// (0 when it vanished or is resident).
func pagesOf(ctx *engine.Context, name string) int64 {
	ds, ok := ctx.Catalog.Get(name)
	if !ok {
		return 0
	}
	if pgd := ds.Paged(); pgd != nil {
		return int64(pgd.TotalPages())
	}
	return 0
}

// datasetsOfGraph lists the distinct dataset names the graph references,
// sorted — the memo entry's invalidation fan-in.
func datasetsOfGraph(g *sqlpp.Graph) []string {
	seen := map[string]bool{}
	for _, ref := range g.Tables {
		seen[ref.Dataset] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fingerprintFields maps each referenced dataset to the fields whose
// statistics drove this shape's planning: join keys and local-predicate
// columns. Aliases of one dataset (date_dim d1, d2, d3) union their fields.
func fingerprintFields(g *sqlpp.Graph) map[string]map[string]bool {
	fields := map[string]map[string]bool{}
	add := func(alias, field string) {
		ref, ok := g.Tables[alias]
		if !ok {
			return
		}
		m := fields[ref.Dataset]
		if m == nil {
			m = map[string]bool{}
			fields[ref.Dataset] = m
		}
		m[field] = true
	}
	for _, ref := range g.Tables {
		if fields[ref.Dataset] == nil {
			fields[ref.Dataset] = map[string]bool{}
		}
	}
	for _, e := range g.Joins {
		for i := range e.LeftFields {
			add(e.LeftAlias, e.LeftFields[i])
			add(e.RightAlias, e.RightFields[i])
		}
	}
	for alias, locals := range g.Locals {
		for _, p := range locals {
			for _, c := range expr.ColumnsOf(p) {
				if c.Qualifier == alias || c.Qualifier == "" {
					add(alias, c.Name)
				}
			}
		}
	}
	return fields
}
