package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// miniWorkload builds a star schema with the failure modes the paper
// targets: correlated predicates on dim_a (a_v = a_w always, so independence
// under-estimates by 10×), a UDF predicate on dim_b's date column, and an
// unfiltered dim_c.
//
//	fact(5000): fk_a=i%500, fk_b=i%200, fk_c=i%1000, m=i
//	dim_a(500): a_id=i, a_v=i%10, a_w=i%10, pad
//	dim_b(200): b_id=i, b_date='199X-01-01' with X=i%5, pad
//	dim_c(1000): c_id=i, c_v, pad
func miniWorkload(t *testing.T, nodes int) *engine.Context {
	t.Helper()
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{"target": types.Int(3)},
	}
	mkSchema := func(specs ...[2]string) *types.Schema {
		s := &types.Schema{}
		for _, sp := range specs {
			k := types.KindInt
			if sp[1] == "s" {
				k = types.KindString
			}
			s.Fields = append(s.Fields, types.Field{Name: sp[0], Kind: k})
		}
		return s
	}
	reg := func(name string, sch *types.Schema, pk []string, rows []types.Tuple) *storage.Dataset {
		ds, st, err := storage.Build(name, sch, pk, rows, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.Catalog.Register(ds, st); err != nil {
			t.Fatal(err)
		}
		return ds
	}

	factRows := make([]types.Tuple, 5000)
	for i := range factRows {
		factRows[i] = types.Tuple{
			types.Int(int64(i)), types.Int(int64(i % 500)), types.Int(int64(i % 200)),
			types.Int(int64(i % 1000)), types.Int(int64(i)),
		}
	}
	reg("fact", mkSchema([2]string{"f_id", "i"}, [2]string{"fk_a", "i"}, [2]string{"fk_b", "i"},
		[2]string{"fk_c", "i"}, [2]string{"m", "i"}), []string{"f_id"}, factRows)

	dimARows := make([]types.Tuple, 500)
	for i := range dimARows {
		dimARows[i] = types.Tuple{
			types.Int(int64(i)), types.Int(int64(i % 10)), types.Int(int64(i % 10)),
			types.Str(strings.Repeat("a", 20)),
		}
	}
	reg("dim_a", mkSchema([2]string{"a_id", "i"}, [2]string{"a_v", "i"}, [2]string{"a_w", "i"},
		[2]string{"a_pad", "s"}), []string{"a_id"}, dimARows)

	dimBRows := make([]types.Tuple, 200)
	for i := range dimBRows {
		dimBRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("19%d-01-01", 90+i%5)),
			types.Str(strings.Repeat("b", 20)),
		}
	}
	reg("dim_b", mkSchema([2]string{"b_id", "i"}, [2]string{"b_date", "s"}, [2]string{"b_pad", "s"}),
		[]string{"b_id"}, dimBRows)

	dimCRows := make([]types.Tuple, 1000)
	for i := range dimCRows {
		dimCRows[i] = types.Tuple{
			types.Int(int64(i)), types.Int(int64(i % 7)), types.Str(strings.Repeat("c", 20)),
		}
	}
	reg("dim_c", mkSchema([2]string{"c_id", "i"}, [2]string{"c_v", "i"}, [2]string{"c_pad", "s"}),
		[]string{"c_id"}, dimCRows)
	return ctx
}

// miniQuery joins all four tables with the paper's predicate shapes.
const miniQuery = `SELECT fact.m FROM fact, dim_a, dim_b, dim_c
WHERE fact.fk_a = dim_a.a_id AND fact.fk_b = dim_b.b_id AND fact.fk_c = dim_c.c_id
  AND dim_a.a_v = 3 AND dim_a.a_w = 3
  AND myyear(dim_b.b_date) = 1993`

// expectedMiniRows computes the reference result directly from the
// generators: fk_a%10==3 (dim_a filter) and fk_b%5==3 (dim_b year filter).
func expectedMiniRows() []int64 {
	var out []int64
	for i := 0; i < 5000; i++ {
		if (i%500)%10 == 3 && (i%200)%5 == 3 {
			out = append(out, int64(i))
		}
	}
	return out
}

func resultInts(res *engine.Result) []int64 {
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].I())
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func sameInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDynamicEndToEnd(t *testing.T) {
	ctx := miniWorkload(t, 4)
	d := NewDynamic()
	res, rep, err := d.Run(ctx, miniQuery)
	if err != nil {
		t.Fatalf("dynamic run: %v\nreport: %v", err, rep)
	}
	want := expectedMiniRows()
	if got := resultInts(res); !sameInts(got, want) {
		t.Fatalf("result rows = %d, want %d", len(got), len(want))
	}
	// 3 joins: one loop stage + final two-join job ⇒ 1 reopt; dim_a has two
	// (correlated) predicates and dim_b a UDF ⇒ 2 push-downs.
	if rep.PushDowns != 2 {
		t.Errorf("pushdowns = %d, want 2", rep.PushDowns)
	}
	if rep.Reopts != 1 {
		t.Errorf("reopts = %d, want 1", rep.Reopts)
	}
	if rep.Tree == nil {
		t.Fatal("no assembled tree")
	}
	if rep.Tree.JoinCount() != 3 {
		t.Errorf("assembled tree has %d joins:\n%s", rep.Tree.JoinCount(), rep.Tree.Tree())
	}
	// Temps must be cleaned up.
	for _, name := range ctx.Catalog.Names() {
		if strings.HasPrefix(name, "tmp_") {
			t.Errorf("leftover temp %s", name)
		}
	}
	if rep.SimSeconds <= 0 {
		t.Error("sim seconds not computed")
	}
	if rep.Counters.ReoptPoints != 3 {
		t.Errorf("metered reopt points = %d, want 3 (2 pushdowns + 1 stage)", rep.Counters.ReoptPoints)
	}
}

func TestDynamicChoosesSelectiveJoinFirst(t *testing.T) {
	ctx := miniWorkload(t, 4)
	d := NewDynamic()
	_, rep, err := d.Run(ctx, miniQuery)
	if err != nil {
		t.Fatal(err)
	}
	// The first executed stage must join the fact table with one of the
	// filtered dimensions (a or b) — never the unfiltered dim_c first.
	if len(rep.StagePlans) < 3 {
		t.Fatalf("stage plans: %v", rep.StagePlans)
	}
	var stage1 string
	for _, s := range rep.StagePlans {
		if strings.HasPrefix(s, "stage 1:") {
			stage1 = s
		}
	}
	if stage1 == "" {
		t.Fatalf("no stage 1 in %v", rep.StagePlans)
	}
	if strings.Contains(stage1, "dim_c") {
		t.Errorf("first stage joined the unfiltered dimension: %s", stage1)
	}
	if !strings.Contains(stage1, "fact") {
		t.Errorf("first stage does not touch fact: %s", stage1)
	}
}

func TestDynamicBroadcastsFilteredDimensions(t *testing.T) {
	ctx := miniWorkload(t, 4)
	d := NewDynamic()
	_, rep, err := d.Run(ctx, miniQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Compact(), "⋈b") {
		t.Errorf("no broadcast chosen in %s", rep.Compact())
	}
	if rep.Counters.BroadcastBytes == 0 {
		t.Error("no broadcast bytes metered")
	}
}

func TestOracleReproducesDynamicResult(t *testing.T) {
	ctx := miniWorkload(t, 4)
	d := NewDynamic()
	res1, rep1, err := d.Run(ctx, miniQuery)
	if err != nil {
		t.Fatal(err)
	}
	o := &Oracle{Label: "upfront", Tree: rep1.Tree}
	res2, rep2, err := o.Run(ctx, miniQuery)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !sameInts(resultInts(res1), resultInts(res2)) {
		t.Error("oracle result differs from dynamic")
	}
	if rep2.Counters.ReoptPoints != 0 {
		t.Errorf("oracle crossed %d reopt points", rep2.Counters.ReoptPoints)
	}
	if rep2.Counters.MatWriteBytes != 0 {
		t.Errorf("oracle materialized %d bytes", rep2.Counters.MatWriteBytes)
	}
	// The whole point of Figure 6: dynamic = oracle + overhead.
	if rep1.SimSeconds <= rep2.SimSeconds {
		t.Errorf("dynamic (%.4fs) not slower than upfront oracle (%.4fs)", rep1.SimSeconds, rep2.SimSeconds)
	}
}

func TestDynamicConfigModes(t *testing.T) {
	want := expectedMiniRows()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no-online-stats", Config{Algo: DefaultAlgoConfig(), PushDown: true, ReoptLoop: true, OnlineStats: false}},
		{"pushdown-only", Config{Algo: DefaultAlgoConfig(), PushDown: true, ReoptLoop: false, OnlineStats: false}},
		{"no-pushdown", Config{Algo: DefaultAlgoConfig(), PushDown: false, ReoptLoop: true, OnlineStats: true}},
		{"ingres-mode", Config{Algo: DefaultAlgoConfig(), PushDown: true, PushDownAll: true, ReoptLoop: true, CardinalityOnly: true}},
		{"inlj-enabled", Config{Algo: AlgoConfig{BroadcastThresholdBytes: 2 << 20, EnableINLJ: true}, PushDown: true, ReoptLoop: true, OnlineStats: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ctx := miniWorkload(t, 4)
			if c.name == "inlj-enabled" {
				ds, _ := ctx.Catalog.Get("fact")
				for _, f := range []string{"fk_a", "fk_b", "fk_c"} {
					if _, err := storage.BuildIndex(ds, f); err != nil {
						t.Fatal(err)
					}
				}
			}
			d := &Dynamic{Cfg: c.cfg}
			res, rep, err := d.Run(ctx, miniQuery)
			if err != nil {
				t.Fatalf("%v\n%v", err, rep)
			}
			if got := resultInts(res); !sameInts(got, want) {
				t.Errorf("result = %d rows, want %d", len(got), len(want))
			}
		})
	}
}

func TestDynamicINLJPicked(t *testing.T) {
	ctx := miniWorkload(t, 4)
	ds, _ := ctx.Catalog.Get("fact")
	for _, f := range []string{"fk_a", "fk_b", "fk_c"} {
		if _, err := storage.BuildIndex(ds, f); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	cfg.Algo.EnableINLJ = true
	d := &Dynamic{Cfg: cfg}
	_, rep, err := d.Run(ctx, miniQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Compact(), "⋈i") {
		t.Errorf("INLJ not chosen with indexes present: %s", rep.Compact())
	}
	if rep.Counters.IndexLookups == 0 {
		t.Error("no index lookups metered")
	}
}

func TestDynamicTwoTableQuery(t *testing.T) {
	ctx := miniWorkload(t, 4)
	d := NewDynamic()
	res, rep, err := d.Run(ctx, `SELECT fact.m FROM fact, dim_a
		WHERE fact.fk_a = dim_a.a_id AND dim_a.a_v = 3 AND dim_a.a_w = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reopts != 0 {
		t.Errorf("single-join query crossed %d loop reopts", rep.Reopts)
	}
	want := 0
	for i := 0; i < 5000; i++ {
		if (i%500)%10 == 3 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestDynamicSingleTableQuery(t *testing.T) {
	ctx := miniWorkload(t, 4)
	d := NewDynamic()
	res, _, err := d.Run(ctx, `SELECT dim_a.a_id FROM dim_a WHERE dim_a.a_v = 3 AND dim_a.a_w = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 {
		t.Errorf("rows = %d, want 50", len(res.Rows))
	}
}

func TestDynamicWithParams(t *testing.T) {
	ctx := miniWorkload(t, 4)
	d := NewDynamic()
	res, rep, err := d.Run(ctx, `SELECT fact.m FROM fact, dim_a
		WHERE fact.fk_a = dim_a.a_id AND dim_a.a_v = $target AND dim_a.a_w = $target`)
	if err != nil {
		t.Fatal(err)
	}
	// Parameterized predicates are complex ⇒ push-down executed.
	if rep.PushDowns != 1 {
		t.Errorf("pushdowns = %d, want 1", rep.PushDowns)
	}
	want := 0
	for i := 0; i < 5000; i++ {
		if (i%500)%10 == 3 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestDynamicParseErrorPropagates(t *testing.T) {
	ctx := miniWorkload(t, 2)
	d := NewDynamic()
	if _, _, err := d.Run(ctx, "SELEKT x FROM y"); err == nil {
		t.Error("bad SQL did not error")
	}
	if _, _, err := d.Run(ctx, "SELECT x.a FROM unknown_table x"); err == nil {
		t.Error("unknown dataset did not error")
	}
}

func TestChooseAlgoRules(t *testing.T) {
	cfg := AlgoConfig{BroadcastThresholdBytes: 1000, EnableINLJ: true}
	small := algoInput{estRows: 10, estBytes: 500, filtered: true}
	smallUnfiltered := algoInput{estRows: 10, estBytes: 500}
	big := algoInput{estRows: 100000, estBytes: 5_000_000}
	bigIndexed := algoInput{estRows: 100000, estBytes: 5_000_000, indexedBase: true}

	if a, bl := ChooseAlgo(cfg, small, bigIndexed); a != plan.AlgoIndexNL || !bl {
		t.Errorf("small-filtered vs big-indexed = %v buildLeft=%v, want INLJ/left", a, bl)
	}
	if a, bl := ChooseAlgo(cfg, bigIndexed, small); a != plan.AlgoIndexNL || bl {
		t.Errorf("mirrored INLJ = %v buildLeft=%v", a, bl)
	}
	// Unfiltered broadcast side: INLJ rejected (Q8 nation case) → broadcast.
	if a, _ := ChooseAlgo(cfg, smallUnfiltered, bigIndexed); a != plan.AlgoBroadcast {
		t.Errorf("unfiltered small side = %v, want broadcast", a)
	}
	// No index: broadcast.
	if a, bl := ChooseAlgo(cfg, small, big); a != plan.AlgoBroadcast || !bl {
		t.Errorf("small vs big = %v buildLeft=%v, want broadcast/left", a, bl)
	}
	// Nothing small: hash with smaller build side.
	if a, bl := ChooseAlgo(cfg, big, algoInput{estRows: 50000, estBytes: 2_000_000}); a != plan.AlgoHash || bl {
		t.Errorf("big vs big = %v buildLeft=%v, want hash/right", a, bl)
	}
	// INLJ disabled: broadcast wins even with an index.
	cfg.EnableINLJ = false
	if a, _ := ChooseAlgo(cfg, small, bigIndexed); a != plan.AlgoBroadcast {
		t.Errorf("INLJ disabled = %v, want broadcast", a)
	}
	// Filtered-but-too-big side cannot INLJ (Q8 part case).
	cfg.EnableINLJ = true
	bigFiltered := algoInput{estRows: 100000, estBytes: 5_000_000, filtered: true}
	if a, _ := ChooseAlgo(cfg, bigFiltered, bigIndexed); a != plan.AlgoHash {
		t.Errorf("big-filtered vs big-indexed = %v, want hash", a)
	}

	// Storage-level access paths: with a real page count on the indexed
	// inner, a small unfiltered binding set still picks the index seek when
	// its probes touch fewer pages than a full scan would decode.
	pagedIndexed := algoInput{estRows: 100000, estBytes: 5_000_000, indexedBase: true, pages: 400}
	if a, bl := ChooseAlgo(cfg, smallUnfiltered, pagedIndexed); a != plan.AlgoIndexNL || !bl {
		t.Errorf("small binding set vs paged-indexed = %v buildLeft=%v, want INLJ/left", a, bl)
	}
	// A binding set at least as large as the inner's page count gains
	// nothing from seeking: broadcast/hash as before.
	wideOuter := algoInput{estRows: 400, estBytes: 500, pages: 0}
	if a, _ := ChooseAlgo(cfg, wideOuter, pagedIndexed); a != plan.AlgoBroadcast {
		t.Errorf("page-count-sized binding set = %v, want broadcast", a)
	}
	// Resident inner (pages == 0): the estimate-based rule is unchanged.
	if !indexBeatsScannedPages(10, 400) || indexBeatsScannedPages(400, 400) ||
		indexBeatsScannedPages(10, 0) || indexBeatsScannedPages(0, 400) {
		t.Error("indexBeatsScannedPages boundary cases wrong")
	}
}

func TestEstimatorTableEstimate(t *testing.T) {
	ctx := miniWorkload(t, 2)
	est := &Estimator{Cat: ctx.Catalog, Reg: ctx.Catalog.Stats()}
	rows, bytes, err := est.TableEstimate("dim_a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 500 || bytes <= 0 {
		t.Errorf("unfiltered estimate = %d rows %d bytes", rows, bytes)
	}
	// Single histogram-estimable filter.
	f := &expr.Compare{Op: expr.CmpEq, L: &expr.Column{Qualifier: "dim_a", Name: "a_v"}, R: &expr.Literal{Val: types.Int(3)}}
	rows, _, err = est.TableEstimate("dim_a", f)
	if err != nil {
		t.Fatal(err)
	}
	if rows < 30 || rows > 70 {
		t.Errorf("filtered estimate = %d, want ~50", rows)
	}
	// Correlated pair under independence: ~5 (the misestimate the paper
	// fixes by executing predicates).
	f2 := &expr.And{Kids: []expr.Expr{f, &expr.Compare{Op: expr.CmpEq, L: &expr.Column{Qualifier: "dim_a", Name: "a_w"}, R: &expr.Literal{Val: types.Int(3)}}}}
	rows, _, err = est.TableEstimate("dim_a", f2)
	if err != nil {
		t.Fatal(err)
	}
	if rows > 20 {
		t.Errorf("correlated independence estimate = %d, want <20 (misestimate)", rows)
	}
	if _, _, err := est.TableEstimate("nope", nil); err == nil {
		t.Error("missing stats did not error")
	}
	// Pre-applied mode ignores the filter.
	est.FiltersPreApplied = true
	rows, _, _ = est.TableEstimate("dim_a", f2)
	if rows != 500 {
		t.Errorf("pre-applied estimate = %d, want 500", rows)
	}
}

func TestEstimatorFieldDistinct(t *testing.T) {
	ctx := miniWorkload(t, 2)
	est := &Estimator{Cat: ctx.Catalog, Reg: ctx.Catalog.Stats()}
	d := est.FieldDistinct("dim_a", "a_v", 500)
	if d < 9 || d > 11 {
		t.Errorf("distinct(a_v) = %d, want ~10", d)
	}
	// Capped at est rows.
	if got := est.FieldDistinct("dim_a", "a_id", 5); got != 5 {
		t.Errorf("capped distinct = %d", got)
	}
	// Fallbacks.
	if got := est.FieldDistinct("nope", "x", 42); got != 42 {
		t.Errorf("missing dataset fallback = %d", got)
	}
	if got := est.FieldDistinct("dim_a", "nope", 42); got != 42 {
		t.Errorf("missing field fallback = %d", got)
	}
}

func TestJoinEstimateFKShape(t *testing.T) {
	ctx := miniWorkload(t, 2)
	q, _ := sqlpp.Parse("SELECT fact.m FROM fact, dim_a WHERE fact.fk_a = dim_a.a_id")
	g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	est := &Estimator{Cat: ctx.Catalog, Reg: ctx.Catalog.Stats()}
	tables, err := BuildTables(est, g, g.NeededColumns(), false)
	if err != nil {
		t.Fatal(err)
	}
	card, err := est.JoinEstimate(g.Joins[0], tables)
	if err != nil {
		t.Fatal(err)
	}
	// PK/FK: |fact| survives ≈ 5000.
	if card < 4000 || card > 6000 {
		t.Errorf("PK/FK join estimate = %d, want ~5000", card)
	}
}

func TestPlanFullProducesValidPlan(t *testing.T) {
	ctx := miniWorkload(t, 4)
	q, _ := sqlpp.Parse(miniQuery)
	g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	est := &Estimator{Cat: ctx.Catalog, Reg: ctx.Catalog.Stats()}
	tables, err := BuildTables(est, g, g.NeededColumns(), false)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := PlanFull(est, g, tables, DefaultAlgoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tree.JoinCount() != 3 {
		t.Errorf("plan joins = %d:\n%s", tree.JoinCount(), tree.Tree())
	}
	aliases := tree.Aliases()
	if len(aliases) != 4 {
		t.Errorf("plan covers %v", aliases)
	}
	// The plan must execute correctly.
	rel, err := engine.Execute(ctx, tree)
	if err != nil {
		t.Fatalf("executing DP plan: %v\n%s", err, tree.Tree())
	}
	res, err := engine.Finish(ctx, q, rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultInts(res); !sameInts(got, expectedMiniRows()) {
		t.Errorf("DP plan result = %d rows, want %d", len(got), len(expectedMiniRows()))
	}
}

func TestPlanFullErrors(t *testing.T) {
	ctx := miniWorkload(t, 2)
	est := &Estimator{Cat: ctx.Catalog, Reg: ctx.Catalog.Stats()}
	if _, err := PlanFull(est, &sqlpp.Graph{}, Tables{}, DefaultAlgoConfig()); err == nil {
		t.Error("empty graph did not error")
	}
}

func TestReportString(t *testing.T) {
	ctx := miniWorkload(t, 2)
	d := NewDynamic()
	_, rep, err := d.Run(ctx, miniQuery)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"dynamic", "rows=", "reopts=", "stage"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	empty := &Report{Strategy: "x"}
	if empty.Compact() != "-" {
		t.Errorf("empty Compact = %q", empty.Compact())
	}
}
