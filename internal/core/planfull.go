package core

import (
	"fmt"

	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
)

// dpEntry is the best known plan for one alias subset.
type dpEntry struct {
	node     *plan.Node
	rows     int64
	bytes    int64
	cost     float64
	filtered bool
	// leafAlias is set when the subset is a single alias (INLJ inner
	// eligibility: only base leaves keep their indexes).
	leafAlias string
}

// PlanFull enumerates bushy join trees over the query graph with dynamic
// programming (System-R generalized to bushy shapes) and returns the
// cheapest full plan under the C_out cost function (sum of intermediate
// result cardinalities), annotated with physical algorithms by the same
// JoinAlgorithmRule the dynamic approach uses.
//
// This is the machinery behind the static cost-based baseline and the
// push-down-only configuration: estimates come from whatever the supplied
// estimator's registry holds — ingestion statistics with independence
// assumptions for the former, push-down-refined statistics for the latter.
func PlanFull(est *Estimator, g *sqlpp.Graph, tables Tables, cfg AlgoConfig) (*plan.Node, error) {
	n := len(g.Aliases)
	if n == 0 {
		return nil, fmt.Errorf("core: empty FROM clause")
	}
	if n > 20 {
		return nil, fmt.Errorf("core: %d datasets exceed the DP enumerator's limit", n)
	}
	aliasIdx := map[string]int{}
	for i, a := range g.Aliases {
		aliasIdx[a] = i
	}
	best := make(map[uint32]*dpEntry, 1<<uint(n))

	// Leaves.
	for i, alias := range g.Aliases {
		info := tables[alias]
		if info == nil {
			return nil, fmt.Errorf("core: missing table info for %q", alias)
		}
		leaf := &plan.Leaf{
			Dataset:  info.Dataset,
			Alias:    alias,
			Filter:   info.Filter,
			Project:  info.Project,
			Filtered: info.Filtered,
		}
		if ds, ok := est.Cat.Get(info.Dataset); ok {
			leaf.Temp = ds.Temp
		}
		node := plan.NewLeaf(leaf)
		node.EstRows = info.EstRows
		best[1<<uint(i)] = &dpEntry{
			node: node, rows: info.EstRows, bytes: info.EstBytes,
			cost: 0, filtered: info.Filtered, leafAlias: alias,
		}
	}

	// connecting returns the aligned key lists joining subset a to subset b.
	connecting := func(a, b uint32) (lk, rk []string) {
		for _, e := range g.Joins {
			li, ri := aliasIdx[e.LeftAlias], aliasIdx[e.RightAlias]
			switch {
			case a&(1<<uint(li)) != 0 && b&(1<<uint(ri)) != 0:
				for i := range e.LeftFields {
					lk = append(lk, e.LeftAlias+"."+e.LeftFields[i])
					rk = append(rk, e.RightAlias+"."+e.RightFields[i])
				}
			case b&(1<<uint(li)) != 0 && a&(1<<uint(ri)) != 0:
				for i := range e.LeftFields {
					lk = append(lk, e.RightAlias+"."+e.RightFields[i])
					rk = append(rk, e.LeftAlias+"."+e.LeftFields[i])
				}
			}
		}
		return lk, rk
	}

	// sideDistinct estimates the composite distinct count of keys within a
	// side: per-field distincts from the owning alias's dataset statistics,
	// capped by the side's row estimate.
	sideDistinct := func(keys []string, rows int64) int64 {
		ds := make([]int64, len(keys))
		for i, k := range keys {
			alias, field := splitQualified(k)
			info := tables[alias]
			if info == nil {
				ds[i] = rows
				continue
			}
			ds[i] = est.FieldDistinct(info.Dataset, field, rows)
		}
		return stats.CompositeDistinct(rows, ds)
	}

	// dpInput adapts one side for the algorithm rule.
	dpInput := func(e *dpEntry, keys []string) algoInput {
		in := algoInput{estRows: e.rows, estBytes: e.bytes, filtered: e.filtered}
		if e.leafAlias != "" && len(keys) > 0 {
			info := tables[e.leafAlias]
			if info != nil && info.IsBase {
				if ds, ok := est.Cat.Get(info.Dataset); ok {
					_, field := splitQualified(keys[0])
					in.indexedBase = ds.HasIndex(field)
				}
			}
		}
		return in
	}

	full := uint32(1)<<uint(n) - 1
	for size := 2; size <= n; size++ {
		for s := uint32(1); s <= full; s++ {
			if popcount(s) != size {
				continue
			}
			for a := (s - 1) & s; a > 0; a = (a - 1) & s {
				b := s &^ a
				if a > b {
					continue // consider each unordered split once
				}
				ea, eb := best[a], best[b]
				if ea == nil || eb == nil {
					continue
				}
				lk, rk := connecting(a, b)
				if len(lk) == 0 {
					continue // cross product: not considered
				}
				du := sideDistinct(lk, ea.rows)
				dv := sideDistinct(rk, eb.rows)
				outRows := stats.JoinCardinality(ea.rows, eb.rows, du, dv)
				cost := ea.cost + eb.cost + float64(outRows)
				cur := best[s]
				if cur != nil && cur.cost <= cost {
					continue
				}
				algo, buildLeft := ChooseAlgo(cfg, dpInput(ea, lk), dpInput(eb, rk))
				node := plan.NewJoin(&plan.Join{
					Left: ea.node, Right: eb.node,
					LeftKeys: lk, RightKeys: rk,
					Algo: algo, BuildLeft: buildLeft,
				})
				node.EstRows = outRows
				width := int64(1)
				if ea.rows > 0 {
					width += ea.bytes / maxI64(ea.rows, 1)
				}
				if eb.rows > 0 {
					width += eb.bytes / maxI64(eb.rows, 1)
				}
				best[s] = &dpEntry{
					node: node, rows: outRows, bytes: outRows * width,
					cost: cost, filtered: true,
				}
			}
		}
	}
	e := best[full]
	if e == nil {
		return nil, fmt.Errorf("core: no connected plan covers all datasets")
	}
	return e.node, nil
}

func splitQualified(q string) (alias, field string) {
	for i := 0; i < len(q); i++ {
		if q[i] == '.' {
			return q[:i], q[i+1:]
		}
	}
	return "", q
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
