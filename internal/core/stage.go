package core

import (
	"fmt"
	"strings"

	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/faults"
	"dynopt/internal/memo"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// runState carries everything Algorithm 1 threads through its iterations:
// the current query (as text, re-parsed each loop to follow Figure 2's
// reformulated-query edge), the report-plan fragments per alias, and the
// mapping from intermediate columns back to original qualified names so the
// assembled report tree speaks the original query's vocabulary.
type runState struct {
	ctx    *engine.Context
	est    *Estimator
	cfg    AlgoConfig
	report *Report

	sql  string
	g    *sqlpp.Graph
	need map[string]map[string]bool // original-query needed columns per ORIGINAL alias

	// fragment[alias] is the assembled plan subtree producing that alias's
	// data, expressed over base datasets (for Oracle re-execution and
	// appendix-style printing).
	fragment map[string]*plan.Node
	// origin[alias][column] maps a current column of alias to its original
	// "alias.field" qualified name.
	origin map[string]map[string]string

	tempNames []string // temps registered by this run, dropped at the end
	stage     int
	// observedSpillBytes is the run-file I/O the previous join stage metered
	// (real-spill mode only). It is the runtime signal the paper's Figure-2
	// loop feeds back: once a stage has actually spilled, the Planner's next
	// pick charges candidate joins for the disk round trips their build
	// sides would pay under the current memory budget, preferring orders
	// that keep the next build side resident.
	observedSpillBytes int64
	// naive makes the Planner choose joins by raw input cardinalities
	// (INGRES-like baseline) instead of formula (1).
	naive bool
	// onlineStats gates sketch collection at every Sink, including the
	// push-down materializations (row counts are always kept).
	onlineStats bool

	// Plan-memo state. rec, when non-nil, accumulates this run's stage
	// decisions and observed cardinalities for memoization. replay is set
	// while a memoized plan is being driven: stages execute without
	// blocking re-optimization accounting (nothing blocks to re-plan) and
	// without online-statistics sketches, and each stage's sink cardinality
	// is checked against the memo's tolerance band instead.
	rec      *memo.Entry
	replay   bool
	memoOpts memo.Options
	// memoGraph is the original analyzed graph (before any reconstruction),
	// kept so the entry's dataset list and statistics fingerprint can be
	// computed lazily at record time — a fully replayed query never pays
	// for them. Reconstruction builds fresh Query/Graph objects, so the
	// pointer stays valid.
	memoGraph *sqlpp.Graph
	// lastStageRows is the row count the most recent staged job (push-down
	// or join) materialized — the replay guardrail's observation.
	lastStageRows int64
}

// reanalyze re-parses the current SQL text and re-runs semantic analysis —
// the loop back through the SQL++ parser in Figure 2.
func (rs *runState) reanalyze() error {
	q, err := sqlpp.Parse(rs.sql)
	if err != nil {
		return fmt.Errorf("core: re-parse of reconstructed query failed: %w\n%s", err, rs.sql)
	}
	g, err := sqlpp.Analyze(q, rs.ctx.Catalog.Resolver())
	if err != nil {
		return fmt.Errorf("core: re-analysis of reconstructed query failed: %w\n%s", err, rs.sql)
	}
	rs.g = g
	return nil
}

// originKey resolves a current qualified column ("iab.b_c") to its original
// qualified name ("b.c").
func (rs *runState) originKey(alias, column string) string {
	if m, ok := rs.origin[alias]; ok {
		if orig, ok := m[column]; ok {
			return orig
		}
	}
	return alias + "." + column
}

// initFragments seeds the per-alias plan fragments and origin maps from the
// original query graph.
func (rs *runState) initFragments() error {
	rs.fragment = map[string]*plan.Node{}
	rs.origin = map[string]map[string]string{}
	need := rs.g.NeededColumns()
	rs.need = need
	for _, alias := range rs.g.Aliases {
		ref := rs.g.Tables[alias]
		leaf := &plan.Leaf{Dataset: ref.Dataset, Alias: alias}
		if f := engine.FilterFor(rs.g.Locals[alias]); f != nil {
			leaf.Filter = f
			leaf.Filtered = true
		}
		if !rs.g.Query.SelectStar {
			if cols, ok := need[alias]; ok {
				for c := range cols {
					leaf.Project = append(leaf.Project, c)
				}
				sortStrings(leaf.Project)
			}
		}
		rs.fragment[alias] = plan.NewLeaf(leaf)
	}
	return nil
}

// pushDownPredicates implements lines 6–9 and 20–23 of Algorithm 1: every
// dataset with more than one local predicate, or any complex one (UDF /
// parameter), is wrapped in a single-variable query, executed, and
// materialized with fresh statistics; the main query is reconstructed to
// reference the intermediate. With all set, every filtered dataset is
// decomposed (the original INGRES behaviour). Returns the number of
// datasets pushed down.
func (rs *runState) pushDownPredicates(all bool) (int, error) {
	count := 0
	for {
		var target string
		for _, alias := range rs.g.Aliases {
			locals := rs.g.Locals[alias]
			if len(locals) == 0 {
				continue
			}
			complex := false
			for _, p := range locals {
				if expr.IsComplex(p) {
					complex = true
					break
				}
			}
			if all || len(locals) > 1 || complex {
				target = alias
				break
			}
		}
		if target == "" {
			return count, nil
		}
		if err := rs.executePushDown(target); err != nil {
			return count, err
		}
		count++
	}
}

// executePushDown runs the single-variable query for one alias: scan with
// its full local filter and the needed-column projection, materialize as a
// temp with statistics on every retained column (they all participate in the
// remaining query, by construction of the projection list), and reconstruct
// the query text. In streaming mode the scan's decode pass feeds the Sink
// chunk-by-chunk — filter, projection, statistics, and write metering in
// one pass, with no intermediate relation.
func (rs *runState) executePushDown(alias string) error {
	info := rs.currentTable(alias)
	if info == nil {
		return fmt.Errorf("core: push-down alias %q not found", alias)
	}
	ds, err := datasetOf(rs.ctx.Catalog, info)
	if err != nil {
		return err
	}
	tempName := rs.ctx.TempName("pred_" + alias)
	// Collect statistics on every retained column: the projection is
	// exactly the set of columns the remaining query touches (§5.1).
	// Disabled in cardinality-only configurations and during memo replay
	// (the remembered plan needs no fresh sketches; row counts are always
	// kept, which is what a post-fallback planner falls back to).
	statsFor := func(sch *types.Schema) map[string]bool {
		if !rs.onlineStats || rs.replay {
			return nil
		}
		fields := map[string]bool{}
		for _, f := range sch.Fields {
			fields[sqlpp.FlattenName(f.Qualifier, f.Name)] = true
		}
		return fields
	}
	var tds *storage.Dataset
	var tst *stats.DatasetStats
	if rs.ctx.Batch {
		rel, err := engine.Scan(rs.ctx, ds, alias, info.Filter, info.Project)
		if err != nil {
			return err
		}
		tds, tst, err = engine.Materialize(rs.ctx, rel, tempName, statsFor(rel.Schema))
		if err != nil {
			return err
		}
	} else {
		src, err := engine.ScanSource(rs.ctx, ds, alias, info.Filter, info.Project)
		if err != nil {
			return err
		}
		sink := engine.NewStreamSink(rs.ctx, src.Schema(), src.Parts(), tempName, statsFor(src.Schema()), src.PartCols())
		if err := engine.RunToSink(rs.ctx, src, sink); err != nil {
			return err
		}
		tds, tst, err = sink.Finish()
		if err != nil {
			return err
		}
	}
	// The flattened names are alias_col; rename back to bare col so the
	// reconstructed query's alias.col references still resolve: the
	// ReplaceFilteredDataset reconstruction keeps the alias and column
	// names (A → A′ in the paper keeps the attribute names).
	for i := range tds.Schema.Fields {
		tds.Schema.Fields[i].Name = stripPrefix(tds.Schema.Fields[i].Name, alias+"_")
	}
	for i, pk := range tds.PrimaryKey {
		tds.PrimaryKey[i] = stripPrefix(pk, alias+"_")
	}
	renamed := map[string]bool{}
	for f := range tst.Fields {
		renamed[f] = true
	}
	for f := range renamed {
		bare := stripPrefix(f, alias+"_")
		if bare != f {
			tst.Fields[bare] = tst.Fields[f]
			delete(tst.Fields, f)
		}
	}
	// Track the temp before registering it: if registration faults or
	// panics partway, cleanup still knows the name and the catalog is left
	// with no half-registered dataset for concurrent queries to trip on.
	rs.tempNames = append(rs.tempNames, tempName)
	if err := rs.ctx.Faults.Fire(faults.Point("catalog.register")); err != nil {
		return err
	}
	if err := rs.ctx.Catalog.Register(tds, tst); err != nil {
		return err
	}
	rs.est.Reg.Put(tst) // feedback into the planner registry (no-op when shared)
	if !rs.replay {
		// A replayed push-down still executes and materializes, but nothing
		// blocks on it to re-plan, so it is not a re-optimization point.
		rs.ctx.Accounting().ReoptPoints.Add(1)
	}
	rs.report.PushDowns++
	rs.lastStageRows = tds.RowCount()
	if rs.rec != nil {
		rs.rec.Stages = append(rs.rec.Stages, memo.Stage{
			Kind: memo.StagePushDown, Alias: alias, ObservedRows: rs.lastStageRows,
		})
	}
	rs.report.StagePlans = append(rs.report.StagePlans,
		fmt.Sprintf("pushdown %s: σ(%s) → %s [%d rows]", alias, alias, tempName, tds.RowCount()))

	newQ, err := sqlpp.ReplaceFilteredDataset(rs.g.Query, alias, tempName)
	if err != nil {
		return err
	}
	rs.sql = newQ.SQL()
	return rs.reanalyze()
}

func stripPrefix(s, prefix string) string {
	return strings.TrimPrefix(s, prefix)
}

// currentTable builds the TableInfo for one alias of the current graph.
func (rs *runState) currentTable(alias string) *TableInfo {
	tables, err := rs.currentTables()
	if err != nil {
		return nil
	}
	return tables[alias]
}

// currentTables estimates every alias of the current graph.
func (rs *runState) currentTables() (Tables, error) {
	return BuildTables(rs.est, rs.g, rs.g.NeededColumns(), rs.g.Query.SelectStar)
}

// pickCheapestJoin is the Planner's line 27–28: scan all current edges and
// return the one with the least estimated result cardinality. In naive
// (INGRES-like) mode the choice minimizes the sum of input cardinalities
// instead, and the result is guessed as the larger input.
func (rs *runState) pickCheapestJoin(tables Tables) (*sqlpp.JoinEdge, int64, error) {
	var best *sqlpp.JoinEdge
	var bestScore, bestCard int64
	for _, edge := range rs.g.Joins {
		var score, card int64
		if rs.naive {
			lt, rt := tables[edge.LeftAlias], tables[edge.RightAlias]
			if lt == nil || rt == nil {
				return nil, 0, fmt.Errorf("core: unknown alias in edge %s", edge)
			}
			score = lt.EstRows + rt.EstRows
			card = maxI64(lt.EstRows, rt.EstRows)
		} else {
			var err error
			card, err = rs.est.JoinEstimate(edge, tables)
			if err != nil {
				return nil, 0, err
			}
			score = card + rs.spillPenalty(edge, tables) + rs.scanPenalty(edge, tables)
		}
		if best == nil || score < bestScore {
			best, bestScore, bestCard = edge, score, card
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("core: no joins left to pick")
	}
	return best, bestCard, nil
}

// spillPenalty prices the run-file round trip a candidate join's build side
// would pay under the real memory budget, in formula-(1) cardinality units:
// build rows beyond the cluster-resident capacity are written once and read
// once. It activates only in real-spill mode and only after a stage has
// actually spilled (observedSpillBytes is the runtime feedback signal), so
// simulated-mode plans — and the Figure 7 golden counters — never move.
func (rs *runState) spillPenalty(edge *sqlpp.JoinEdge, tables Tables) int64 {
	if rs.ctx.Spill == nil || rs.observedSpillBytes == 0 {
		return 0
	}
	budget := rs.ctx.Cluster.MemoryPerNodeBytes()
	if budget <= 0 {
		return 0
	}
	lt, rt := tables[edge.LeftAlias], tables[edge.RightAlias]
	if lt == nil || rt == nil {
		return 0
	}
	// The join-algorithm rule builds on the smaller-cardinality side.
	bRows, bBytes := lt.EstRows, lt.EstBytes
	if rt.EstRows < lt.EstRows {
		bRows, bBytes = rt.EstRows, rt.EstBytes
	}
	resident := budget * int64(rs.ctx.Cluster.Nodes())
	if bBytes <= resident || bRows <= 0 {
		return 0
	}
	width := bBytes / bRows
	if width < 1 {
		width = 1
	}
	return 2 * (bBytes - resident) / width
}

// scanPenalty extends the spill-penalty model to scan I/O: a candidate
// join's paged inputs pay cold page reads for every encoded byte the page
// cache cannot keep resident, priced in the same formula-(1) cardinality
// units (rows' worth of disk traffic, one read each). The zone-map prune
// ratio this query has already observed discounts the pages a filtered scan
// will skip — runtime storage feedback steering the next join pick exactly
// as observedSpillBytes does for spills. Like the spill penalty it activates
// only under a real memory budget (Config.SpillDir): the simulated cost
// model prices no disk, so simulated plans — resident or paged, and with
// them the Figure 7 golden counters and the paged-vs-resident equivalence —
// never move.
func (rs *runState) scanPenalty(edge *sqlpp.JoinEdge, tables Tables) int64 {
	if rs.ctx.Spill == nil {
		return 0
	}
	lt, rt := tables[edge.LeftAlias], tables[edge.RightAlias]
	if lt == nil || rt == nil {
		return 0
	}
	return rs.sideScanPenalty(lt) + rs.sideScanPenalty(rt)
}

// sideScanPenalty prices one input's cold-read bytes beyond the page-cache
// budget, scaled by the observed prune survival rate for filtered scans.
func (rs *runState) sideScanPenalty(info *TableInfo) int64 {
	if info.Pages <= 0 {
		return 0
	}
	ds, ok := rs.ctx.Catalog.Get(info.Dataset)
	if !ok {
		return 0
	}
	pgd := ds.Paged()
	if pgd == nil {
		return 0
	}
	encBytes := ds.ByteSize()
	rows := ds.RowCount()
	if encBytes <= 0 || rows <= 0 {
		return 0
	}
	if info.Filter != nil && rs.ctx.PageStats != nil {
		// Feedback loop: pages this query's earlier stages pruned via zone
		// maps predict what this scan's conjuncts will skip before decode.
		if pr := rs.ctx.PageStats.PruneRatio(); pr > 0 {
			encBytes = int64(float64(encBytes) * (1 - pr))
		}
	}
	var cacheBytes int64
	if c := pgd.Cache(); c != nil {
		cacheBytes = c.Budget()
	}
	cold := encBytes - cacheBytes
	if cold <= 0 {
		return 0
	}
	width := ds.ByteSize() / rows
	if width < 1 {
		width = 1
	}
	return cold / width
}

// executeJoinStage runs one iteration of the loop (lines 12–15): build the
// job for the chosen join (the caller picked edge, algorithm, and build
// side — the Planner in the dynamic loop, the memo entry during replay),
// execute it, materialize the result with online statistics on the join
// keys of the remaining query, register the temp, and reconstruct the query
// text. In streaming mode the join's output chunks flow straight into the
// Sink, so the stage's statistics, metering, and temp write happen in the
// pass that produces each chunk.
func (rs *runState) executeJoinStage(edge *sqlpp.JoinEdge, estCard int64, tables Tables, onlineStats bool, algo plan.Algo, buildLeft bool) error {
	lt := tables[edge.LeftAlias]
	rt := tables[edge.RightAlias]
	rs.stage++
	newAlias := fmt.Sprintf("ij%d", rs.stage)
	tempName := rs.ctx.TempName(newAlias)

	// Online statistics: only the attributes participating in subsequent
	// join stages (§5.3), unless disabled (last iteration / overhead runs).
	var statsFields map[string]bool
	if onlineStats {
		statsFields = map[string]bool{}
		for _, other := range rs.g.Joins {
			if other == edge {
				continue
			}
			for i := range other.LeftFields {
				for _, side := range []struct {
					alias, field string
				}{
					{other.LeftAlias, other.LeftFields[i]},
					{other.RightAlias, other.RightFields[i]},
				} {
					if side.alias == edge.LeftAlias || side.alias == edge.RightAlias {
						statsFields[sqlpp.FlattenName(side.alias, side.field)] = true
					}
				}
			}
		}
	}

	spillBefore := rs.ctx.Accounting().SpillBytes.Load()
	var pagesBefore, prunedBefore int64
	if rs.ctx.PageStats != nil {
		pagesBefore = rs.ctx.PageStats.PagesTotal.Load()
		prunedBefore = rs.ctx.PageStats.PagesPruned.Load()
	}
	var err error
	var tds *storage.Dataset
	var tst *stats.DatasetStats
	var relSchema *types.Schema
	if rs.ctx.Batch {
		rel, err := rs.runJoinJob(edge, lt, rt, algo, buildLeft)
		if err != nil {
			return err
		}
		relSchema = rel.Schema
		tds, tst, err = engine.Materialize(rs.ctx, rel, tempName, statsFields)
		if err != nil {
			return err
		}
	} else {
		tds, tst, relSchema, err = rs.runJoinJobStream(edge, lt, rt, algo, buildLeft, tempName, statsFields)
		if err != nil {
			return err
		}
	}
	// Figure-2 feedback: what this stage actually spilled informs the next
	// stage's join pick.
	rs.observedSpillBytes = rs.ctx.Accounting().SpillBytes.Load() - spillBefore
	// Storage feedback: the zone-map prune ratio this stage's paged scans
	// observed flows into the next pick's scanPenalty through the shared
	// PageStats; the report notes it only when pages were actually touched,
	// so in-memory runs print byte-identical plans.
	if rs.ctx.PageStats != nil {
		if dp := rs.ctx.PageStats.PagesTotal.Load() - pagesBefore; dp > 0 {
			pruned := rs.ctx.PageStats.PagesPruned.Load() - prunedBefore
			rs.report.StagePlans = append(rs.report.StagePlans,
				fmt.Sprintf("  storage: zone maps pruned %d/%d pages", pruned, dp))
		}
	}
	// Track the temp before registering it: if registration faults or
	// panics partway, cleanup still knows the name and the catalog is left
	// with no half-registered dataset for concurrent queries to trip on.
	rs.tempNames = append(rs.tempNames, tempName)
	if err := rs.ctx.Faults.Fire(faults.Point("catalog.register")); err != nil {
		return err
	}
	if err := rs.ctx.Catalog.Register(tds, tst); err != nil {
		return err
	}
	rs.est.Reg.Put(tst) // feedback into the planner registry (no-op when shared)
	if !rs.replay {
		// Replayed stages materialize like any stage, but no blocking
		// re-optimization pass follows them: Reopts stays 0 on a clean
		// replay, and the simulated cost model charges no re-opt latency.
		rs.ctx.Accounting().ReoptPoints.Add(1)
		rs.report.Reopts++
	}
	rs.lastStageRows = tds.RowCount()
	if rs.rec != nil {
		rs.rec.Stages = append(rs.rec.Stages, memo.Stage{
			Kind:      memo.StageJoin,
			LeftAlias: edge.LeftAlias, RightAlias: edge.RightAlias,
			Algo: algo, BuildLeft: buildLeft,
			ObservedRows: rs.lastStageRows,
		})
	}

	// Assemble the report-plan fragment and the origin map for the new alias.
	lfrag, rfrag := rs.fragment[edge.LeftAlias], rs.fragment[edge.RightAlias]
	if lfrag == nil || rfrag == nil {
		return fmt.Errorf("core: missing plan fragment for %s/%s", edge.LeftAlias, edge.RightAlias)
	}
	lkeys := make([]string, len(edge.LeftFields))
	rkeys := make([]string, len(edge.RightFields))
	for i := range edge.LeftFields {
		lkeys[i] = rs.originKey(edge.LeftAlias, edge.LeftFields[i])
		rkeys[i] = rs.originKey(edge.RightAlias, edge.RightFields[i])
	}
	node := plan.NewJoin(&plan.Join{
		Left: lfrag, Right: rfrag,
		LeftKeys: lkeys, RightKeys: rkeys,
		Algo: algo, BuildLeft: buildLeft,
	})
	node.EstRows = estCard
	delete(rs.fragment, edge.LeftAlias)
	delete(rs.fragment, edge.RightAlias)
	rs.fragment[newAlias] = node

	newOrigin := map[string]string{}
	for _, f := range relSchema.Fields {
		flat := sqlpp.FlattenName(f.Qualifier, f.Name)
		newOrigin[flat] = rs.originKey(f.Qualifier, f.Name)
	}
	delete(rs.origin, edge.LeftAlias)
	delete(rs.origin, edge.RightAlias)
	rs.origin[newAlias] = newOrigin

	rs.report.StagePlans = append(rs.report.StagePlans,
		fmt.Sprintf("stage %d: %s → %s [%d rows, est %d]", rs.stage, node.Compact(), tempName, tds.RowCount(), estCard))

	newQ, err := sqlpp.MergeJoin(rs.g.Query, edge, tempName, newAlias)
	if err != nil {
		return err
	}
	rs.sql = newQ.SQL()
	return rs.reanalyze()
}

// runJoinJob executes the physical join between two current tables,
// pipelining their scans into the join operators.
func (rs *runState) runJoinJob(edge *sqlpp.JoinEdge, lt, rt *TableInfo, algo plan.Algo, buildLeft bool) (*engine.Relation, error) {
	lkeys := make([]string, len(edge.LeftFields))
	rkeys := make([]string, len(edge.RightFields))
	for i := range edge.LeftFields {
		lkeys[i] = edge.LeftAlias + "." + edge.LeftFields[i]
		rkeys[i] = edge.RightAlias + "." + edge.RightFields[i]
	}
	switch algo {
	case plan.AlgoIndexNL:
		// Build (broadcast) side is executed as a scan; the inner is probed
		// through its index in place.
		outerInfo, innerInfo := lt, rt
		outerKeys, innerFields := lkeys, edge.RightFields
		if !buildLeft {
			outerInfo, innerInfo = rt, lt
			outerKeys, innerFields = rkeys, edge.LeftFields
		}
		innerDS, err := datasetOf(rs.ctx.Catalog, innerInfo)
		if err != nil {
			return nil, err
		}
		outerDS, err := datasetOf(rs.ctx.Catalog, outerInfo)
		if err != nil {
			return nil, err
		}
		outer, err := engine.Scan(rs.ctx, outerDS, outerInfo.Alias, outerInfo.Filter, outerInfo.Project)
		if err != nil {
			return nil, err
		}
		// The result is outer⧺inner; both halves carry their alias
		// qualifiers, so downstream flattening and reconstruction are
		// orientation-independent.
		return engine.IndexNLJoin(rs.ctx, outer, innerDS, innerInfo.Alias, outerKeys, innerFields, innerInfo.Filter)
	default:
		lds, err := datasetOf(rs.ctx.Catalog, lt)
		if err != nil {
			return nil, err
		}
		rds, err := datasetOf(rs.ctx.Catalog, rt)
		if err != nil {
			return nil, err
		}
		left, err := engine.Scan(rs.ctx, lds, lt.Alias, lt.Filter, lt.Project)
		if err != nil {
			return nil, err
		}
		right, err := engine.Scan(rs.ctx, rds, rt.Alias, rt.Filter, rt.Project)
		if err != nil {
			return nil, err
		}
		if algo == plan.AlgoBroadcast {
			return engine.BroadcastJoin(rs.ctx, left, right, lkeys, rkeys, buildLeft)
		}
		return engine.HashJoin(rs.ctx, left, right, lkeys, rkeys, buildLeft)
	}
}

// runJoinJobStream executes one stage as a single chunked pipeline: the
// build side scans into a relation (a hash table must hold it anyway), the
// probe side streams scan→exchange→probe chunk-by-chunk, and the output
// flows into a StreamSink that observes statistics, meters the temp write,
// and lands the partitions — the whole stage is one pass over the probe
// side with no probe relation and no sink re-walk. Metering totals are
// identical to runJoinJob+Materialize; only the materializations between
// re-optimization points remain.
func (rs *runState) runJoinJobStream(edge *sqlpp.JoinEdge, lt, rt *TableInfo, algo plan.Algo, buildLeft bool,
	tempName string, statsFields map[string]bool) (*storage.Dataset, *stats.DatasetStats, *types.Schema, error) {
	lkeys := make([]string, len(edge.LeftFields))
	rkeys := make([]string, len(edge.RightFields))
	for i := range edge.LeftFields {
		lkeys[i] = edge.LeftAlias + "." + edge.LeftFields[i]
		rkeys[i] = edge.RightAlias + "." + edge.RightFields[i]
	}
	var sink *engine.StreamSink
	mkSink := func(nparts int) engine.SinkFactory {
		return func(sch *types.Schema, partCols []int) (engine.Sink, error) {
			sink = engine.NewStreamSink(rs.ctx, sch, nparts, tempName, statsFields, partCols)
			return sink, nil
		}
	}
	switch algo {
	case plan.AlgoIndexNL:
		// The broadcast (outer) side streams from its scan; the inner is
		// probed through its index in place. The result is outer⧺inner; both
		// halves carry their alias qualifiers, so downstream flattening and
		// reconstruction are orientation-independent.
		outerInfo, innerInfo := lt, rt
		outerKeys, innerFields := lkeys, edge.RightFields
		if !buildLeft {
			outerInfo, innerInfo = rt, lt
			outerKeys, innerFields = rkeys, edge.LeftFields
		}
		innerDS, err := datasetOf(rs.ctx.Catalog, innerInfo)
		if err != nil {
			return nil, nil, nil, err
		}
		outerDS, err := datasetOf(rs.ctx.Catalog, outerInfo)
		if err != nil {
			return nil, nil, nil, err
		}
		outer, err := engine.ScanSource(rs.ctx, outerDS, outerInfo.Alias, outerInfo.Filter, outerInfo.Project)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := engine.IndexNLJoinStream(rs.ctx, outer, innerDS, innerInfo.Alias,
			outerKeys, innerFields, innerInfo.Filter, mkSink(len(innerDS.Parts))); err != nil {
			return nil, nil, nil, err
		}
	default:
		buildInfo, probeInfo := lt, rt
		buildKeys, probeKeys := lkeys, rkeys
		if !buildLeft {
			buildInfo, probeInfo = rt, lt
			buildKeys, probeKeys = rkeys, lkeys
		}
		buildDS, err := datasetOf(rs.ctx.Catalog, buildInfo)
		if err != nil {
			return nil, nil, nil, err
		}
		probeDS, err := datasetOf(rs.ctx.Catalog, probeInfo)
		if err != nil {
			return nil, nil, nil, err
		}
		probe, err := engine.ScanSource(rs.ctx, probeDS, probeInfo.Alias, probeInfo.Filter, probeInfo.Project)
		if err != nil {
			return nil, nil, nil, err
		}
		// buildFirst (== buildLeft here) keeps output tuples left⧺right
		// regardless of build side.
		if algo == plan.AlgoBroadcast {
			// A broadcast build side is replicated whole; scan it into the
			// relation the shared table is built from. The scan gets its own
			// error variable: `build, err :=` would shadow the outer err and
			// silently drop the join's failure at the shared check below.
			build, serr := engine.Scan(rs.ctx, buildDS, buildInfo.Alias, buildInfo.Filter, buildInfo.Project)
			if serr != nil {
				return nil, nil, nil, serr
			}
			err = engine.BroadcastJoinStream(rs.ctx, build, probe, buildKeys, probeKeys, buildLeft, mkSink(probe.Parts()))
		} else {
			// The hash build side streams too: its scan fuses into the
			// exchange scatter, materializing only the exchanged relation.
			buildSrc, serr := engine.ScanSource(rs.ctx, buildDS, buildInfo.Alias, buildInfo.Filter, buildInfo.Project)
			if serr != nil {
				return nil, nil, nil, serr
			}
			err = engine.HashJoinStreamSources(rs.ctx, buildSrc, probe, buildKeys, probeKeys, buildLeft, mkSink(probe.Parts()))
		}
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if sink == nil {
		return nil, nil, nil, fmt.Errorf("core: stage pipeline finished without creating its sink")
	}
	tds, tst, err := sink.Finish()
	if err != nil {
		return nil, nil, nil, err
	}
	return tds, tst, sink.RelSchema(), nil
}

// cleanup drops the temps this run registered.
func (rs *runState) cleanup() {
	for _, name := range rs.tempNames {
		rs.ctx.Catalog.Drop(name)
	}
	rs.tempNames = nil
}
