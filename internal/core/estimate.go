// Package core implements the paper's primary contribution: the runtime
// dynamic optimization of Algorithm 1. It contains the cardinality
// estimator built on formula (1), the join-algorithm rule of §6.1.2, the
// stage executor (Job Construction), the query-reconstruction loop, and the
// Dynamic strategy tying them together. Baseline strategies in
// internal/optimizer reuse these pieces.
package core

import (
	"fmt"

	"dynopt/internal/catalog"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
	"dynopt/internal/storage"
)

// TableInfo is the planner's view of one FROM-clause alias in the current
// (possibly reconstructed) query: where its data lives, what predicates
// remain unexecuted, what columns the rest of the query needs, and the size
// estimate derived from the freshest statistics available.
type TableInfo struct {
	Alias    string
	Dataset  string    // catalog name (base or temp)
	Filter   expr.Expr // remaining local predicates (nil if none)
	Project  []string  // bare column names to retain on scan (nil = all)
	IsBase   bool      // not a materialized intermediate
	Filtered bool      // local predicates exist or were pre-executed
	EstRows  int64
	EstBytes int64
	// Pages is the real physical page count of the dataset's paged backend
	// (0 for resident datasets and intermediates). Unlike EstRows/EstBytes it
	// is not an estimate: the storage directory knows exactly how many pages
	// a full scan reads, which is what access-path selection compares a
	// binding set against.
	Pages int64
}

// Tables indexes TableInfo by alias.
type Tables map[string]*TableInfo

// Estimator derives cardinalities from a statistics registry. The same code
// serves every strategy: accuracy differences come purely from the state of
// the registry (executed-predicate temps carry exact counts; static
// strategies see only ingestion-time base statistics and fall back to
// independence assumptions and Selinger defaults inside StaticSelectivity).
type Estimator struct {
	Cat *catalog.Catalog
	Reg *stats.Registry
	// FiltersPreApplied signals that registry statistics already reflect
	// local predicates (pilot-run samples apply them during sampling), so
	// TableEstimate must not scale by filter selectivity again.
	FiltersPreApplied bool
}

// TableEstimate sizes one alias: registry row count scaled by the estimated
// selectivity of its remaining filter.
func (e *Estimator) TableEstimate(dataset string, filter expr.Expr) (rows, bytes int64, err error) {
	st := e.Reg.Get(dataset)
	if st == nil {
		return 0, 0, fmt.Errorf("core: no statistics for dataset %q", dataset)
	}
	rows = st.RecordCount
	if filter != nil && !e.FiltersPreApplied {
		sel := expr.StaticSelectivity(filter, st)
		rows = int64(float64(rows) * sel)
		if rows < 1 && st.RecordCount > 0 {
			rows = 1
		}
	}
	return rows, rows * st.AvgRowBytes(), nil
}

// fieldDistinct returns the distinct-count estimate for one join-key field,
// capped at the post-filter row estimate. Falls back to the row count (key
// assumption) when the field has no sketch — e.g. when online statistics
// were disabled for an intermediate.
func (e *Estimator) FieldDistinct(dataset, field string, estRows int64) int64 {
	st := e.Reg.Get(dataset)
	if st == nil {
		return estRows
	}
	fs, ok := st.Fields[field]
	if !ok || fs.Count == 0 {
		return estRows
	}
	d := fs.DistinctCount()
	if estRows > 0 && d > estRows {
		d = estRows
	}
	if d < 1 {
		d = 1
	}
	return d
}

// JoinEstimate applies formula (1) to one join edge given the current table
// states: |A ⋈k B| = S(A)·S(B)/max(U(A.k), U(B.k)), generalized to composite
// keys via the capped distinct product.
func (e *Estimator) JoinEstimate(edge *sqlpp.JoinEdge, tables Tables) (int64, error) {
	lt, ok := tables[edge.LeftAlias]
	if !ok {
		return 0, fmt.Errorf("core: unknown alias %q in join estimate", edge.LeftAlias)
	}
	rt, ok := tables[edge.RightAlias]
	if !ok {
		return 0, fmt.Errorf("core: unknown alias %q in join estimate", edge.RightAlias)
	}
	ld := make([]int64, len(edge.LeftFields))
	for i, f := range edge.LeftFields {
		ld[i] = e.FieldDistinct(lt.Dataset, f, lt.EstRows)
	}
	rd := make([]int64, len(edge.RightFields))
	for i, f := range edge.RightFields {
		rd[i] = e.FieldDistinct(rt.Dataset, f, rt.EstRows)
	}
	du := stats.CompositeDistinct(lt.EstRows, ld)
	dv := stats.CompositeDistinct(rt.EstRows, rd)
	return stats.JoinCardinality(lt.EstRows, rt.EstRows, du, dv), nil
}

// BuildTables assembles the planner's table states for the current query
// graph, estimating every alias from the freshest registry statistics.
func BuildTables(est *Estimator, g *sqlpp.Graph, need map[string]map[string]bool, selectStar bool) (Tables, error) {
	tables := Tables{}
	for _, alias := range g.Aliases {
		ref := g.Tables[alias]
		ds, ok := est.Cat.Get(ref.Dataset)
		if !ok {
			return nil, fmt.Errorf("core: dataset %q not in catalog", ref.Dataset)
		}
		filter := engine.FilterFor(g.Locals[alias])
		rows, bytes, err := est.TableEstimate(ref.Dataset, filter)
		if err != nil {
			return nil, err
		}
		info := &TableInfo{
			Alias:    alias,
			Dataset:  ref.Dataset,
			Filter:   filter,
			IsBase:   !ds.Temp,
			Filtered: filter != nil || ds.Temp,
			EstRows:  rows,
			EstBytes: bytes,
		}
		if pgd := ds.Paged(); pgd != nil {
			info.Pages = int64(pgd.TotalPages())
		}
		if !selectStar {
			if cols, ok := need[alias]; ok {
				for col := range cols {
					info.Project = append(info.Project, col)
				}
				sortStrings(info.Project)
			}
		}
		tables[alias] = info
	}
	return tables, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// datasetOf fetches the storage dataset behind a table state.
func datasetOf(cat *catalog.Catalog, info *TableInfo) (*storage.Dataset, error) {
	ds, ok := cat.Get(info.Dataset)
	if !ok {
		return nil, fmt.Errorf("core: dataset %q vanished from catalog", info.Dataset)
	}
	return ds, nil
}
