package core

import (
	"strings"
	"testing"

	"dynopt/internal/memo"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
)

// runWithMemo executes the wide workload's query under the dynamic strategy
// wired to the given store.
func runWithMemo(t *testing.T, store *memo.Store) (*Report, int) {
	t.Helper()
	ctx, sql, wantRows := wideWorkload(t)
	d := &Dynamic{Cfg: DefaultConfig(), Memo: store}
	res, rep, err := d.Run(ctx, sql)
	if err != nil {
		t.Fatalf("%v\n%v", err, rep)
	}
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	return rep, wantRows
}

// TestReplayStaleFingerprintRefused tampers with a recorded entry's
// fingerprint and asserts the replay is refused (no hit, no fallback — a
// plain re-optimization that re-records the shape).
func TestReplayStaleFingerprintRefused(t *testing.T) {
	store := memo.NewStore(8, memo.Options{})
	rep1, _ := runWithMemo(t, store)
	if rep1.CacheHit {
		t.Fatal("first run reported a hit")
	}
	rep2, _ := runWithMemo(t, store)
	if !rep2.CacheHit || rep2.Reopts != 0 {
		t.Fatalf("second run did not replay (hit=%v reopts=%d)", rep2.CacheHit, rep2.Reopts)
	}

	// Tamper: pretend the entry was recorded against a 100× smaller fact
	// table. The fingerprint no longer matches the live registry.
	ctx, sql, _ := wideWorkload(t)
	q, err := sqlpp.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	key := ShapeKey(g, DefaultConfig())
	e := store.Peek(key)
	if e == nil {
		t.Fatalf("recorded entry not found under %q", key)
	}
	tampered := *e
	tampered.Fingerprint = stats.Fingerprint{}
	for name, fp := range e.Fingerprint {
		fp2 := fp
		fp2.Rows = fp.Rows/100 + 1
		tampered.Fingerprint[name] = fp2
	}
	store.Put(&tampered)

	rep3, _ := runWithMemo(t, store)
	if rep3.CacheHit {
		t.Error("stale fingerprint was replayed")
	}
	if rep3.ReplayFellBack {
		t.Error("stale fingerprint fell back mid-query instead of being refused upfront")
	}
	found := false
	for _, s := range rep3.StagePlans {
		if strings.Contains(s, "stale fingerprint") {
			found = true
		}
	}
	if !found {
		t.Errorf("refusal not reported:\n%s", strings.Join(rep3.StagePlans, "\n"))
	}

	// The refused run re-recorded a fresh entry: the next run replays.
	rep4, _ := runWithMemo(t, store)
	if !rep4.CacheHit {
		t.Error("shape not re-recorded after refusal")
	}
}

// TestShapeKeyDiscriminatesConfig: the same statement under different
// join-algorithm configurations must occupy different memo slots.
func TestShapeKeyDiscriminatesConfig(t *testing.T) {
	ctx, sql, _ := wideWorkload(t)
	q, err := sqlpp.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig()
	k1 := ShapeKey(g, base)

	bt := base
	bt.Algo.BroadcastThresholdBytes = 1
	inlj := base
	inlj.Algo.EnableINLJ = true
	spill := base
	spill.Algo.SpillBudgetBytes = 1 << 20
	budget := base
	budget.MaxReopts = 1
	naive := base
	naive.CardinalityOnly = true
	for _, cfg := range []Config{bt, inlj, spill, budget, naive} {
		if k := ShapeKey(g, cfg); k == k1 {
			t.Errorf("config %+v shares key with default", cfg)
		}
	}
	if k := ShapeKey(g, base); k != k1 {
		t.Error("ShapeKey not deterministic")
	}
}

// TestRecordingRefusedAcrossInvalidation: a recording that straddles an
// invalidation epoch must not re-enter the store (the DDL-during-query
// race).
func TestRecordingRefusedAcrossInvalidation(t *testing.T) {
	store := memo.NewStore(8, memo.Options{})
	rep, _ := runWithMemo(t, store)
	if rep.CacheHit {
		t.Fatal("first run hit")
	}
	if store.Len() != 1 {
		t.Fatalf("len = %d, want 1", store.Len())
	}
	// Simulate DDL landing while the next recording is in flight: the
	// entry's Born epoch predates the invalidation, so Put refuses it.
	store.InvalidateDataset("fact")
	if store.Len() != 0 {
		t.Fatalf("invalidation left %d entries", store.Len())
	}
	stale := &memo.Entry{Shape: "x", Datasets: []string{"fact"}, Born: 0}
	store.Put(stale)
	if store.Len() != 0 {
		t.Error("pre-invalidation recording re-entered the store")
	}
	// A fresh run (Born == current epoch) records normally.
	rep2, _ := runWithMemo(t, store)
	if rep2.CacheHit || store.Len() != 1 {
		t.Errorf("post-invalidation run did not re-record (hit=%v len=%d)", rep2.CacheHit, store.Len())
	}
}

// TestReplayMaxReoptsInteraction: a budget-limited recording still produces
// a replayable trace, and replaying it reports zero reopts.
func TestReplayMaxReoptsInteraction(t *testing.T) {
	store := memo.NewStore(8, memo.Options{})
	ctx, sql, wantRows := wideWorkload(t)
	cfg := DefaultConfig()
	cfg.MaxReopts = 1
	d := &Dynamic{Cfg: cfg, Memo: store}
	res, rep, err := d.Run(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != wantRows || rep.Reopts > 1 {
		t.Fatalf("budgeted run rows=%d reopts=%d", len(res.Rows), rep.Reopts)
	}
	res2, rep2, err := d.Run(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.CacheHit || rep2.Reopts != 0 {
		t.Errorf("budgeted trace did not replay cleanly (hit=%v reopts=%d)", rep2.CacheHit, rep2.Reopts)
	}
	if len(res2.Rows) != wantRows {
		t.Errorf("replay rows = %d, want %d", len(res2.Rows), wantRows)
	}
}
