package core

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
	"dynopt/internal/workload"
)

// randomStar builds a randomized star schema: one fact table and 2–4
// dimensions with varying sizes, fan-outs, and filters, then checks that
// the dynamic optimizer's result matches a naive single-threaded reference
// evaluation. This is the end-to-end correctness property: whatever plan
// Algorithm 1 chooses — push-downs, stage order, join algorithms — the
// answer must be the reference answer.
func randomStarCase(seed uint64) (ctx *engine.Context, sql string, want []int64, err error) {
	rng := workload.NewRNG(seed)
	nodes := 2 + rng.Intn(4)
	ctx = &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	nDims := 2 + rng.Intn(3)
	dimSizes := make([]int, nDims)
	filterMod := make([]int, nDims)
	filterVal := make([]int, nDims)
	for d := 0; d < nDims; d++ {
		dimSizes[d] = 20 + rng.Intn(200)
		filterMod[d] = 0
		if rng.Intn(2) == 0 {
			filterMod[d] = 2 + rng.Intn(6)
			filterVal[d] = rng.Intn(filterMod[d])
		}
	}
	// Dimensions.
	for d := 0; d < nDims; d++ {
		sch := types.NewSchema(
			types.Field{Name: "id", Kind: types.KindInt},
			types.Field{Name: "v", Kind: types.KindInt},
		)
		rows := make([]types.Tuple, dimSizes[d])
		for i := range rows {
			rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 10))}
		}
		name := fmt.Sprintf("dim%d", d)
		ds, st, berr := storage.Build(name, sch, []string{"id"}, rows, nodes)
		if berr != nil {
			return nil, "", nil, berr
		}
		if berr := ctx.Catalog.Register(ds, st); berr != nil {
			return nil, "", nil, berr
		}
	}
	// Fact.
	factN := 500 + rng.Intn(3000)
	fields := []types.Field{{Name: "id", Kind: types.KindInt}}
	for d := 0; d < nDims; d++ {
		fields = append(fields, types.Field{Name: fmt.Sprintf("fk%d", d), Kind: types.KindInt})
	}
	factRows := make([]types.Tuple, factN)
	fks := make([][]int, factN)
	for i := range factRows {
		row := types.Tuple{types.Int(int64(i))}
		fk := make([]int, nDims)
		for d := 0; d < nDims; d++ {
			fk[d] = rng.Intn(dimSizes[d])
			row = append(row, types.Int(int64(fk[d])))
		}
		factRows[i] = row
		fks[i] = fk
	}
	ds, st, berr := storage.Build("fact", &types.Schema{Fields: fields}, []string{"id"}, factRows, nodes)
	if berr != nil {
		return nil, "", nil, berr
	}
	if berr := ctx.Catalog.Register(ds, st); berr != nil {
		return nil, "", nil, berr
	}

	// Query text.
	sql = "SELECT fact.id FROM fact"
	for d := 0; d < nDims; d++ {
		sql += fmt.Sprintf(", dim%d", d)
	}
	sql += " WHERE "
	for d := 0; d < nDims; d++ {
		if d > 0 {
			sql += " AND "
		}
		sql += fmt.Sprintf("fact.fk%d = dim%d.id", d, d)
	}
	for d := 0; d < nDims; d++ {
		if filterMod[d] > 0 {
			// Two redundant (perfectly correlated) predicates to trigger
			// push-down half the time.
			sql += fmt.Sprintf(" AND dim%d.v >= 0 AND dim%d.v = %d", d, d, filterVal[d]%10)
		}
	}

	// Reference evaluation.
	for i := range fks {
		ok := true
		for d := 0; d < nDims; d++ {
			if filterMod[d] > 0 && fks[i][d]%10 != filterVal[d]%10 {
				ok = false
				break
			}
		}
		if ok {
			want = append(want, int64(i))
		}
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	return ctx, sql, want, nil
}

func TestDynamicMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		ctx, sql, want, err := randomStarCase(seed)
		if err != nil {
			t.Logf("seed %d: build error %v", seed, err)
			return false
		}
		res, rep, err := NewDynamic().Run(ctx, sql)
		if err != nil {
			t.Logf("seed %d: %v\n%s\n%v", seed, err, sql, rep)
			return false
		}
		got := make([]int64, 0, len(res.Rows))
		for _, r := range res.Rows {
			got = append(got, r[0].I())
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if len(got) != len(want) {
			t.Logf("seed %d: %d rows, want %d\n%s", seed, len(got), len(want), sql)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: row %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The same property for the full-plan DP path (cost-based execution).
func TestPlanFullMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		ctx, sql, want, err := randomStarCase(seed)
		if err != nil {
			return false
		}
		cfg := Config{Algo: DefaultAlgoConfig(), PushDown: true, ReoptLoop: false}
		res, rep, err := (&Dynamic{Cfg: cfg, Label: "pushdown-static"}).Run(ctx, sql)
		if err != nil {
			t.Logf("seed %d: %v\n%v", seed, err, rep)
			return false
		}
		if len(res.Rows) != len(want) {
			t.Logf("seed %d: %d rows, want %d", seed, len(res.Rows), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
