package core

import (
	"fmt"
	"strings"
	"time"

	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/plan"
)

// Strategy is one query-optimization approach under evaluation (§7.2): the
// dynamic approach of this package, or one of the baselines in
// internal/optimizer.
type Strategy interface {
	// Name identifies the strategy in benchmark tables.
	Name() string
	// Run executes the query end to end and reports what was done.
	Run(ctx *engine.Context, sql string) (*engine.Result, *Report, error)
}

// Report describes one strategy execution: the plan that was effectively
// executed (assembled over base datasets, printable in the paper's appendix
// notation), the blocking points crossed, and the work metered.
type Report struct {
	Strategy   string
	SQL        string
	StagePlans []string   // one line per executed stage / push-down
	Tree       *plan.Node // assembled full join tree over base datasets
	Reopts     int        // blocking re-optimization points in the join loop
	PushDowns  int        // predicate push-down jobs executed
	Rows       int        // result rows returned
	// CacheHit reports that the run replayed a memoized plan end to end:
	// every staged job and the final pipeline came from the plan memo, with
	// zero blocking re-optimization points.
	CacheHit bool
	// ReplayFellBack reports that a replay started but a stage's observed
	// cardinality left the memo's tolerance band (or the shape stopped
	// matching structurally), and the run fell back to the dynamic loop
	// from the already-materialized intermediate.
	ReplayFellBack bool
	Wall           time.Duration
	Counters       cluster.Snapshot // work metered for this run
	SimSeconds     float64          // Counters priced by the cluster cost model
}

// Compact renders the assembled plan in the appendix notation, or a dash if
// the run had no joins.
func (r *Report) Compact() string {
	if r.Tree == nil {
		return "-"
	}
	return r.Tree.Compact()
}

// String renders a multi-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", r.Strategy, r.Compact())
	fmt.Fprintf(&b, "  rows=%d reopts=%d pushdowns=%d wall=%s sim=%.3fs\n",
		r.Rows, r.Reopts, r.PushDowns, r.Wall, r.SimSeconds)
	fmt.Fprintf(&b, "  counters=%s", r.Counters.String())
	for _, s := range r.StagePlans {
		b.WriteString("\n  ")
		b.WriteString(s)
	}
	return b.String()
}

// Metered wraps a strategy body with wall-clock timing, counter diffing, and
// simulated-time pricing; every strategy runs inside one Metered window.
func Metered(ctx *engine.Context, name, sql string, body func(r *Report) (*engine.Result, error)) (*engine.Result, *Report, error) {
	r := &Report{Strategy: name, SQL: sql}
	acct := ctx.Accounting()
	before := acct.Snapshot()
	start := time.Now()
	res, err := body(r)
	r.Wall = time.Since(start)
	r.Counters = acct.Snapshot().Sub(before)
	r.SimSeconds = ctx.Cluster.Model().SimSeconds(r.Counters, ctx.Cluster.Nodes())
	if err != nil {
		return nil, r, err
	}
	r.Rows = len(res.Rows)
	return res, r, nil
}
