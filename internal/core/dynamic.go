package core

import (
	"fmt"

	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/memo"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
)

// Config toggles the phases of the dynamic approach. The overhead
// experiments of §7.1 switch individual phases off.
type Config struct {
	Algo AlgoConfig
	// PushDown executes multi/complex local predicates first (§5.1).
	PushDown bool
	// ReoptLoop enables the blocking re-optimization loop (lines 11–15).
	// When false, the remaining query after push-down is planned in full
	// from the refined statistics and executed as one pipelined job — the
	// "predicate push-down only" configuration of Figure 6 (right).
	ReoptLoop bool
	// OnlineStats collects sketches at each Sink (§5.3). When false the
	// planner falls back to record counts only — the "re-optimization
	// without online statistics" configuration of Figure 6 (left).
	OnlineStats bool
	// PushDownAll decomposes every dataset with any local predicate into a
	// single-variable query (the original INGRES decomposition), not only
	// multi/complex ones.
	PushDownAll bool
	// CardinalityOnly makes the Planner choose the next join by the raw
	// input cardinalities (min |A|+|B|) instead of formula (1) — the
	// INGRES-like baseline's naive cost model (§7.2).
	CardinalityOnly bool
	// MaxReopts bounds the number of blocking re-optimization points. When
	// the budget is exhausted the remaining query is planned in full from
	// the statistics gathered so far and executed as one pipelined job —
	// the accuracy-vs-overhead trade-off the paper's §8 proposes exploring.
	// 0 means unlimited.
	MaxReopts int
}

// DefaultConfig enables the full dynamic approach.
func DefaultConfig() Config {
	return Config{Algo: DefaultAlgoConfig(), PushDown: true, ReoptLoop: true, OnlineStats: true}
}

// Dynamic is the paper's runtime dynamic optimization strategy.
type Dynamic struct {
	Cfg Config
	// PlannerReg optionally overrides the statistics registry the Planner
	// estimates from (pilot-run seeds it with sample-derived statistics).
	// Materialized intermediates feed their fresh statistics back into it.
	// Nil uses the catalog's registry.
	PlannerReg *stats.Registry
	// Label overrides the reported strategy name (baselines reusing this
	// driver set it).
	Label string
	// FiltersPreApplied marks the planner registry's statistics as already
	// reflecting local predicates (pilot-run samples).
	FiltersPreApplied bool
	// Memo, when set, is the adaptive plan memo: runs record what the loop
	// converged to per canonical query shape, and later runs of the same
	// shape replay the remembered plan under cardinality guardrails instead
	// of paying the blocking re-optimization passes. Nil (the default)
	// keeps the strategy byte-identical to the paper's loop.
	Memo *memo.Store
	// NoCache bypasses the memo for this run: no replay, no recording.
	NoCache bool
}

// NewDynamic returns the strategy with the full default configuration.
func NewDynamic() *Dynamic { return &Dynamic{Cfg: DefaultConfig()} }

// Name implements Strategy.
func (d *Dynamic) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "dynamic"
}

// Run executes Algorithm 1.
func (d *Dynamic) Run(ctx *engine.Context, sql string) (*engine.Result, *Report, error) {
	return Metered(ctx, d.Name(), sql, func(r *Report) (*engine.Result, error) {
		return d.Body(ctx, sql, r)
	})
}

// Body is the un-metered Algorithm 1 driver: strategies that wrap extra
// phases around the loop (pilot runs) call it inside their own metering
// window.
func (d *Dynamic) Body(ctx *engine.Context, sql string, r *Report) (*engine.Result, error) {
	reg := d.PlannerReg
	if reg == nil {
		reg = ctx.Catalog.Stats()
	}
	cfg := d.Cfg.Algo
	if ctx.Spill != nil && cfg.SpillBudgetBytes == 0 {
		// Real-spill execution: let the join-algorithm rule see the memory
		// budget so planned broadcasts match what the engine will run.
		cfg.SpillBudgetBytes = ctx.Cluster.MemoryPerNodeBytes()
	}
	rs := &runState{
		ctx:         ctx,
		est:         &Estimator{Cat: ctx.Catalog, Reg: reg, FiltersPreApplied: d.FiltersPreApplied},
		cfg:         cfg,
		report:      r,
		sql:         sql,
		naive:       d.Cfg.CardinalityOnly,
		onlineStats: d.Cfg.OnlineStats,
	}
	defer rs.cleanup()
	if err := rs.reanalyze(); err != nil {
		return nil, err
	}
	if err := rs.initFragments(); err != nil {
		return nil, err
	}

	// Plan memo: try the guarded replay of a remembered convergence, and arm
	// recording so this run's own convergence (from scratch or from the
	// fallback point) becomes the shape's next entry.
	if d.Memo != nil && !d.NoCache {
		res, err := d.tryReplay(rs, r)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
	}

	// Lines 6–9: execute multi/complex predicates first. After a mid-replay
	// fallback this picks up exactly the push-downs the replayed prefix did
	// not execute.
	if d.Cfg.PushDown {
		if _, err := rs.pushDownPredicates(d.Cfg.PushDownAll); err != nil {
			return nil, err
		}
	}

	if !d.Cfg.ReoptLoop {
		// Push-down-only mode: plan everything that remains from the
		// refined statistics and run one pipelined job.
		res, err := rs.runRemainderStatically()
		return d.record(rs, res, err)
	}

	// Lines 11–15: while more than two joins remain, execute only the
	// cheapest next join, materialize, and re-optimize the rest.
	for len(rs.g.Joins) > 2 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d.Cfg.MaxReopts > 0 && rs.report.Reopts >= d.Cfg.MaxReopts {
			// Re-optimization budget exhausted (§8 trade-off): plan the
			// rest from the statistics gathered so far.
			res, err := rs.runRemainderStatically()
			return d.record(rs, res, err)
		}
		tables, err := rs.currentTables()
		if err != nil {
			return nil, err
		}
		edge, card, err := rs.pickCheapestJoin(tables)
		if err != nil {
			return nil, err
		}
		algo, buildLeft, err := rs.est.chooseAlgoForEdge(rs.cfg, edge, tables)
		if err != nil {
			return nil, err
		}
		// Online statistics are skipped once no further re-optimization
		// will happen (three datasets left ⇒ after this stage only two
		// joins remain and the final Planner call decides everything).
		online := d.Cfg.OnlineStats && len(rs.g.Aliases) > 3
		if err := rs.executeJoinStage(edge, card, tables, online, algo, buildLeft); err != nil {
			return nil, err
		}
	}

	// Lines 17–18: plan the final (at most two) joins in one job.
	res, err := rs.runFinal()
	return d.record(rs, res, err)
}

// runFinal plans and executes the last job: zero, one, or two remaining
// joins, pipelined, results to the user (lines 29–30 of Algorithm 1).
func (rs *runState) runFinal() (*engine.Result, error) {
	tables, err := rs.currentTables()
	if err != nil {
		return nil, err
	}
	switch len(rs.g.Joins) {
	case 0:
		if len(rs.g.Aliases) != 1 {
			return nil, fmt.Errorf("core: %d aliases with no joins", len(rs.g.Aliases))
		}
		info := tables[rs.g.Aliases[0]]
		ds, err := datasetOf(rs.ctx.Catalog, info)
		if err != nil {
			return nil, err
		}
		rel, err := engine.Scan(rs.ctx, ds, info.Alias, info.Filter, info.Project)
		if err != nil {
			return nil, err
		}
		rs.report.Tree = rs.fragment[info.Alias]
		return engine.Finish(rs.ctx, rs.g.Query, rel)
	case 1:
		edge := rs.g.Joins[0]
		node, err := rs.finalJoinNode(edge, tables, nil)
		if err != nil {
			return nil, err
		}
		return rs.executeFinalTree(node, tables)
	case 2:
		// Pick the cheaper of the two joins as the inner (line 28), wire the
		// remaining edge(s) as the outer join (lines 29–30).
		inner, innerCard, err := rs.pickCheapestJoin(tables)
		if err != nil {
			return nil, err
		}
		innerNode, err := rs.finalJoinNode(inner, tables, nil)
		if err != nil {
			return nil, err
		}
		innerNode.EstRows = innerCard

		covered := map[string]bool{inner.LeftAlias: true, inner.RightAlias: true}
		var outerEdges []*sqlpp.JoinEdge
		for _, e := range rs.g.Joins {
			if e != inner {
				outerEdges = append(outerEdges, e)
			}
		}
		if len(outerEdges) == 0 {
			return nil, fmt.Errorf("core: lost the outer join edge")
		}
		// The third alias is the one the outer edges attach.
		var third string
		for _, e := range outerEdges {
			for _, a := range []string{e.LeftAlias, e.RightAlias} {
				if !covered[a] {
					third = a
				}
			}
		}
		if third == "" {
			return nil, fmt.Errorf("core: cyclic final join graph not supported")
		}
		node, err := rs.outerJoinNode(innerNode, innerCard, inner, outerEdges, third, tables)
		if err != nil {
			return nil, err
		}
		return rs.executeFinalTree(node, tables)
	default:
		return nil, fmt.Errorf("core: runFinal called with %d joins", len(rs.g.Joins))
	}
}

// finalJoinNode builds the plan node for a remaining edge over current
// tables (leaves reference current datasets: temps or bases).
func (rs *runState) finalJoinNode(edge *sqlpp.JoinEdge, tables Tables, _ []string) (*plan.Node, error) {
	lt, rt := tables[edge.LeftAlias], tables[edge.RightAlias]
	algo, buildLeft, err := rs.est.chooseAlgoForEdge(rs.cfg, edge, tables)
	if err != nil {
		return nil, err
	}
	lkeys := make([]string, len(edge.LeftFields))
	rkeys := make([]string, len(edge.RightFields))
	for i := range edge.LeftFields {
		lkeys[i] = edge.LeftAlias + "." + edge.LeftFields[i]
		rkeys[i] = edge.RightAlias + "." + edge.RightFields[i]
	}
	return plan.NewJoin(&plan.Join{
		Left:     rs.leafNode(lt),
		Right:    rs.leafNode(rt),
		LeftKeys: lkeys, RightKeys: rkeys,
		Algo: algo, BuildLeft: buildLeft,
	}), nil
}

// outerJoinNode wires the final outer join between the inner join's result
// and the third table, merging all remaining edges into one composite
// condition.
func (rs *runState) outerJoinNode(innerNode *plan.Node, innerCard int64, inner *sqlpp.JoinEdge, outerEdges []*sqlpp.JoinEdge, third string, tables Tables) (*plan.Node, error) {
	tt := tables[third]
	tds, err := datasetOf(rs.ctx.Catalog, tt)
	if err != nil {
		return nil, err
	}
	var innerKeys, thirdKeys []string
	for _, e := range outerEdges {
		for i := range e.LeftFields {
			if e.LeftAlias == third {
				thirdKeys = append(thirdKeys, e.LeftAlias+"."+e.LeftFields[i])
				innerKeys = append(innerKeys, e.RightAlias+"."+e.RightFields[i])
			} else {
				thirdKeys = append(thirdKeys, e.RightAlias+"."+e.RightFields[i])
				innerKeys = append(innerKeys, e.LeftAlias+"."+e.LeftFields[i])
			}
		}
	}
	// Size the inner result for the algorithm rule.
	lw := rs.est.Reg.Get(tables[inner.LeftAlias].Dataset)
	rw := rs.est.Reg.Get(tables[inner.RightAlias].Dataset)
	var width int64 = 16
	if lw != nil && rw != nil {
		width = lw.AvgRowBytes() + rw.AvgRowBytes()
	}
	innerInput := algoInput{
		estRows:  innerCard,
		estBytes: innerCard * width,
		filtered: true,
	}
	thirdInput := sideFromTable(tt, tds, bareName(thirdKeys[0]))
	algo, buildLeft := ChooseAlgo(rs.cfg, innerInput, thirdInput)
	return plan.NewJoin(&plan.Join{
		Left:     innerNode,
		Right:    rs.leafNode(tt),
		LeftKeys: innerKeys, RightKeys: thirdKeys,
		Algo: algo, BuildLeft: buildLeft,
	}), nil
}

func bareName(qualified string) string {
	for i := len(qualified) - 1; i >= 0; i-- {
		if qualified[i] == '.' {
			return qualified[i+1:]
		}
	}
	return qualified
}

// leafNode builds the execution leaf for a current table.
func (rs *runState) leafNode(info *TableInfo) *plan.Node {
	ds, _ := rs.ctx.Catalog.Get(info.Dataset)
	return plan.NewLeaf(&plan.Leaf{
		Dataset:  info.Dataset,
		Alias:    info.Alias,
		Filter:   info.Filter,
		Project:  info.Project,
		Temp:     ds != nil && ds.Temp,
		Filtered: info.Filtered,
	})
}

// RequiredOutputColumns collects the qualified columns the query's output
// clauses (SELECT, GROUP BY, ORDER BY) reference — the interior-projection
// root set. Nil for SELECT *.
func RequiredOutputColumns(g *sqlpp.Graph) map[string]bool {
	if g.Query.SelectStar {
		return nil
	}
	out := map[string]bool{}
	add := func(e expr.Expr) {
		for _, c := range expr.ColumnsOf(e) {
			if c.Qualifier != "" {
				out[c.Qualifier+"."+c.Name] = true
			}
		}
	}
	for _, s := range g.Query.Select {
		add(s.Expr)
	}
	for _, ge := range g.Query.GroupBy {
		add(ge)
	}
	for _, o := range g.Query.OrderBy {
		add(o.Expr)
	}
	return out
}

// executeFinalTree runs the last pipelined job and assembles the report
// tree by splicing the stage fragments into the final node structure.
func (rs *runState) executeFinalTree(node *plan.Node, tables Tables) (*engine.Result, error) {
	if rs.rec != nil {
		rs.rec.Final = memoNodeOf(node)
	}
	plan.AnnotateProjections(node, RequiredOutputColumns(rs.g))
	rel, err := engine.Execute(rs.ctx, node)
	if err != nil {
		return nil, err
	}
	rs.report.Tree = rs.spliceFragments(node)
	rs.report.StagePlans = append(rs.report.StagePlans,
		fmt.Sprintf("final: %s", node.Compact()))
	return engine.Finish(rs.ctx, rs.g.Query, rel)
}

// spliceFragments rewrites a final-job plan (whose leaves may reference
// temp datasets) into the full-query report tree by substituting each temp
// leaf with the stage fragment that produced it, and translating join keys
// back to original qualified names.
func (rs *runState) spliceFragments(n *plan.Node) *plan.Node {
	if n == nil {
		return nil
	}
	if n.Leaf != nil {
		if frag, ok := rs.fragment[n.Leaf.Alias]; ok {
			return frag
		}
		return n
	}
	j := n.Join
	lkeys := make([]string, len(j.LeftKeys))
	for i, k := range j.LeftKeys {
		lkeys[i] = rs.originOfQualified(k)
	}
	rkeys := make([]string, len(j.RightKeys))
	for i, k := range j.RightKeys {
		rkeys[i] = rs.originOfQualified(k)
	}
	out := plan.NewJoin(&plan.Join{
		Left:     rs.spliceFragments(j.Left),
		Right:    rs.spliceFragments(j.Right),
		LeftKeys: lkeys, RightKeys: rkeys,
		Algo: j.Algo, BuildLeft: j.BuildLeft,
	})
	out.EstRows = n.EstRows
	return out
}

func (rs *runState) originOfQualified(qualified string) string {
	for i := 0; i < len(qualified); i++ {
		if qualified[i] == '.' {
			return rs.originKey(qualified[:i], qualified[i+1:])
		}
	}
	return qualified
}

// runRemainderStatically plans the whole remaining query from the current
// (push-down-refined) statistics and executes it as one pipelined job — the
// push-down-only configuration.
func (rs *runState) runRemainderStatically() (*engine.Result, error) {
	tables, err := rs.currentTables()
	if err != nil {
		return nil, err
	}
	node, err := PlanFull(rs.est, rs.g, tables, rs.cfg)
	if err != nil {
		return nil, err
	}
	return rs.executeFinalTree(node, tables)
}

// Oracle executes a previously assembled plan tree as a single pipelined
// job — the "statistics known upfront" baseline of the §7.1 overhead
// experiments, and the executor behind the best-order strategy.
type Oracle struct {
	Label string
	Tree  *plan.Node
}

// Name implements Strategy.
func (o *Oracle) Name() string {
	if o.Label != "" {
		return o.Label
	}
	return "oracle"
}

// Run implements Strategy: parse (for the finishing clauses), execute the
// fixed tree, finish.
func (o *Oracle) Run(ctx *engine.Context, sql string) (*engine.Result, *Report, error) {
	return Metered(ctx, o.Name(), sql, func(r *Report) (*engine.Result, error) {
		q, err := sqlpp.Parse(sql)
		if err != nil {
			return nil, err
		}
		g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
		if err != nil {
			return nil, err
		}
		if o.Tree == nil {
			return nil, fmt.Errorf("core: oracle has no plan tree")
		}
		plan.AnnotateProjections(o.Tree, RequiredOutputColumns(g))
		rel, err := engine.Execute(ctx, o.Tree)
		if err != nil {
			return nil, err
		}
		r.Tree = o.Tree
		r.StagePlans = append(r.StagePlans, "single job: "+o.Tree.Compact())
		return engine.Finish(ctx, q, rel)
	})
}
