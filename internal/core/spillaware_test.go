package core

import (
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
	"dynopt/internal/storage"
)

// spillAwareState builds a minimal runState in real-spill mode: a 4-node
// cluster at a 25 KiB per-node budget (100 KiB cluster-resident capacity)
// with a spill manager attached.
func spillAwareState(t *testing.T) *runState {
	t.Helper()
	ctx := &engine.Context{
		Cluster: cluster.New(4),
		Catalog: catalog.New(),
		Spill:   storage.NewSpillManager(t.TempDir(), "t_"),
	}
	ctx.Cluster.SetMemoryPerNodeBytes(25 << 10)
	return &runState{
		ctx: ctx,
		est: &Estimator{Cat: ctx.Catalog, Reg: stats.NewRegistry()},
	}
}

func edge(l, r string) *sqlpp.JoinEdge {
	return &sqlpp.JoinEdge{LeftAlias: l, RightAlias: r, LeftFields: []string{"k"}, RightFields: []string{"k"}}
}

// TestSpillPenaltyGating: the penalty exists only in real-spill mode, only
// after a stage actually spilled, and only for build sides that exceed the
// cluster-resident capacity.
func TestSpillPenaltyGating(t *testing.T) {
	rs := spillAwareState(t)
	tables := Tables{
		"a": {Alias: "a", EstRows: 9000, EstBytes: 360 << 10},
		"b": {Alias: "b", EstRows: 10000, EstBytes: 400 << 10},
		"d": {Alias: "d", EstRows: 500, EstBytes: 20 << 10},
	}
	over := edge("a", "b")

	if pen := rs.spillPenalty(over, tables); pen != 0 {
		t.Errorf("penalty before any observed spill = %d, want 0", pen)
	}
	rs.observedSpillBytes = 1 << 20
	if pen := rs.spillPenalty(over, tables); pen <= 0 {
		t.Error("no penalty for an over-budget build side after observed spill")
	}
	if pen := rs.spillPenalty(edge("b", "d"), tables); pen != 0 {
		t.Errorf("penalty for a resident build side = %d, want 0", pen)
	}
	rs.ctx.Spill = nil // simulated mode: the signal must be inert
	if pen := rs.spillPenalty(over, tables); pen != 0 {
		t.Errorf("penalty in simulated mode = %d, want 0", pen)
	}
}

// TestPickCheapestJoinPrefersResidentBuildAfterSpill: once a stage spills,
// the Planner passes over a slightly cheaper join whose build side cannot
// stay resident, in favor of one that avoids the disk round trip.
func TestPickCheapestJoinPrefersResidentBuildAfterSpill(t *testing.T) {
	rs := spillAwareState(t)
	overBudget := edge("big1", "big2") // card 9000, build 360KB ≫ 100KB resident
	resident := edge("big1", "dim")    // card 9500, build 40KB — stays resident
	rs.g = &sqlpp.Graph{Joins: []*sqlpp.JoinEdge{overBudget, resident}}
	tables := Tables{
		"big1": {Alias: "big1", Dataset: "big1", EstRows: 10000, EstBytes: 400 << 10},
		"big2": {Alias: "big2", Dataset: "big2", EstRows: 9000, EstBytes: 360 << 10},
		"dim":  {Alias: "dim", Dataset: "dim", EstRows: 9500, EstBytes: 40 << 10},
	}

	got, _, err := rs.pickCheapestJoin(tables)
	if err != nil {
		t.Fatal(err)
	}
	if got != overBudget {
		t.Fatalf("without observed spill the cheapest-cardinality join must win")
	}
	rs.observedSpillBytes = 64 << 10
	got, _, err = rs.pickCheapestJoin(tables)
	if err != nil {
		t.Fatal(err)
	}
	if got != resident {
		t.Fatalf("after observed spill the resident-build join must win")
	}
}

// TestChooseAlgoSpillBudgetDowngradesBroadcast: with a positive spill
// budget in the algorithm config (real-spill mode), a broadcast whose
// build side exceeds it becomes a partitioned hash join — for every
// planner, since they all route through ChooseAlgo. With the budget unset
// (simulated mode) the rule is unchanged.
func TestChooseAlgoSpillBudgetDowngradesBroadcast(t *testing.T) {
	big := algoInput{estRows: 10000, estBytes: 400 << 10}
	overDim := algoInput{estRows: 800, estBytes: 50 << 10}  // fits the 128KB broadcast threshold
	smallDim := algoInput{estRows: 800, estBytes: 20 << 10} // fits the 25KB budget too

	cfg := DefaultAlgoConfig()
	cfg.SpillBudgetBytes = 25 << 10
	algo, buildLeft := ChooseAlgo(cfg, big, overDim)
	if algo != plan.AlgoHash {
		t.Errorf("over-budget broadcast not downgraded: %v", algo)
	}
	if buildLeft {
		t.Error("downgraded hash join must build on the smaller-cardinality side")
	}
	if algo, _ := ChooseAlgo(cfg, big, smallDim); algo != plan.AlgoBroadcast {
		t.Errorf("within-budget broadcast downgraded: %v", algo)
	}
	// Simulated mode (no budget): untouched.
	if algo, _ := ChooseAlgo(DefaultAlgoConfig(), big, overDim); algo != plan.AlgoBroadcast {
		t.Errorf("simulated-mode broadcast downgraded: %v", algo)
	}
}
