package core

import (
	"fmt"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// wideWorkload: a fact table with five dimensions (5 joins), so the
// unbounded loop crosses three stage re-optimization points before the
// final two-join job.
func wideWorkload(t *testing.T) (*engine.Context, string, int) {
	t.Helper()
	const nodes = 4
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	reg := func(name string, sch *types.Schema, pk []string, rows []types.Tuple) {
		ds, st, err := storage.Build(name, sch, pk, rows, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.Catalog.Register(ds, st); err != nil {
			t.Fatal(err)
		}
	}
	const nDims = 5
	dimSize := []int{40, 80, 120, 200, 300}
	for d := 0; d < nDims; d++ {
		sch := types.NewSchema(
			types.Field{Name: "id", Kind: types.KindInt},
			types.Field{Name: "v", Kind: types.KindInt},
		)
		rows := make([]types.Tuple, dimSize[d])
		for i := range rows {
			rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 5))}
		}
		reg(fmt.Sprintf("dim%d", d), sch, []string{"id"}, rows)
	}
	fields := []types.Field{{Name: "id", Kind: types.KindInt}}
	for d := 0; d < nDims; d++ {
		fields = append(fields, types.Field{Name: fmt.Sprintf("fk%d", d), Kind: types.KindInt})
	}
	const factN = 4000
	factRows := make([]types.Tuple, factN)
	for i := range factRows {
		row := types.Tuple{types.Int(int64(i))}
		for d := 0; d < nDims; d++ {
			row = append(row, types.Int(int64(i%dimSize[d])))
		}
		factRows[i] = row
	}
	reg("fact", &types.Schema{Fields: fields}, []string{"id"}, factRows)

	sql := "SELECT fact.id FROM fact"
	for d := 0; d < nDims; d++ {
		sql += fmt.Sprintf(", dim%d", d)
	}
	sql += " WHERE "
	for d := 0; d < nDims; d++ {
		if d > 0 {
			sql += " AND "
		}
		sql += fmt.Sprintf("fact.fk%d = dim%d.id", d, d)
	}
	// dim0 filtered: v = 2 keeps 8 of 40 ids ⇒ 1/5 of fact rows.
	sql += " AND dim0.v = 2"
	return ctx, sql, factN / 5
}

func TestMaxReoptsBudget(t *testing.T) {
	for _, budget := range []int{0, 1, 2, 10} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			ctx, sql, wantRows := wideWorkload(t)
			cfg := DefaultConfig()
			cfg.MaxReopts = budget
			d := &Dynamic{Cfg: cfg}
			res, rep, err := d.Run(ctx, sql)
			if err != nil {
				t.Fatalf("%v\n%v", err, rep)
			}
			if len(res.Rows) != wantRows {
				t.Errorf("rows = %d, want %d", len(res.Rows), wantRows)
			}
			if budget > 0 && rep.Reopts > budget {
				t.Errorf("reopts = %d exceeds budget %d", rep.Reopts, budget)
			}
			if budget == 0 && rep.Reopts != 3 {
				// 5 joins: stages shrink 5→4→3 edges, then the final
				// two-join job.
				t.Errorf("unbounded reopts = %d, want 3", rep.Reopts)
			}
		})
	}
}

func TestMaxReoptsReducesOverheadMonotonically(t *testing.T) {
	var prevMat int64 = -1
	for _, budget := range []int{1, 2, 3} {
		ctx, sql, _ := wideWorkload(t)
		cfg := DefaultConfig()
		cfg.MaxReopts = budget
		_, rep, err := (&Dynamic{Cfg: cfg}).Run(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		if prevMat >= 0 && rep.Counters.MatWriteBytes < prevMat {
			t.Errorf("budget %d materialized %d bytes, less than smaller budget's %d",
				budget, rep.Counters.MatWriteBytes, prevMat)
		}
		prevMat = rep.Counters.MatWriteBytes
	}
}
