package core

import (
	"fmt"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// String join keys exercise the statistics fallback paths: HLL sketches
// cover strings but GK histograms do not, so table estimates for filters on
// string columns fall back to Selinger defaults while join estimates still
// get real distinct counts.
func TestDynamicWithStringJoinKeys(t *testing.T) {
	const nodes = 4
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	reg := func(name string, sch *types.Schema, pk []string, rows []types.Tuple) {
		ds, st, err := storage.Build(name, sch, pk, rows, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.Catalog.Register(ds, st); err != nil {
			t.Fatal(err)
		}
	}
	countries := []string{"DE", "FR", "IT", "ES", "NL", "PT", "BE", "AT"}
	dimRows := make([]types.Tuple, len(countries))
	for i, c := range countries {
		dimRows[i] = types.Tuple{types.Str(c), types.Int(int64(i % 2))}
	}
	reg("country", types.NewSchema(
		types.Field{Name: "code", Kind: types.KindString},
		types.Field{Name: "zone", Kind: types.KindInt},
	), []string{"code"}, dimRows)

	region := []types.Tuple{{types.Int(0), types.Str("north")}, {types.Int(1), types.Str("south")}}
	reg("zone", types.NewSchema(
		types.Field{Name: "z_id", Kind: types.KindInt},
		types.Field{Name: "z_name", Kind: types.KindString},
	), []string{"z_id"}, region)

	factRows := make([]types.Tuple, 4000)
	for i := range factRows {
		factRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(countries[i%len(countries)]),
			types.Int(int64(i % 100)),
		}
	}
	reg("shipments", types.NewSchema(
		types.Field{Name: "sh_id", Kind: types.KindInt},
		types.Field{Name: "sh_country", Kind: types.KindString},
		types.Field{Name: "sh_weight", Kind: types.KindInt},
	), []string{"sh_id"}, factRows)

	sql := `SELECT s.sh_id FROM shipments s, country c, zone z
		WHERE s.sh_country = c.code AND c.zone = z.z_id
		  AND z.z_name = 'north' AND c.code != 'DE' AND c.code != 'XX'`
	res, rep, err := NewDynamic().Run(ctx, sql)
	if err != nil {
		t.Fatalf("%v\n%v", err, rep)
	}
	// zone north = zone 0 = countries at even index {DE, IT, NL, BE}; DE
	// excluded ⇒ 3 of 8 countries ⇒ 1500 shipments.
	if len(res.Rows) != 1500 {
		t.Errorf("rows = %d, want 1500", len(res.Rows))
	}
	// The two != predicates on c triggered a push-down.
	if rep.PushDowns != 1 {
		t.Errorf("pushdowns = %d, want 1", rep.PushDowns)
	}
}

func TestFinishOrderByWithNulls(t *testing.T) {
	const nodes = 2
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	rows := []types.Tuple{
		{types.Int(1), types.Str("b")},
		{types.Int(2), types.Null()},
		{types.Int(3), types.Str("a")},
	}
	ds, st, err := storage.Build("t", types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt},
		types.Field{Name: "v", Kind: types.KindString},
	), []string{"id"}, rows, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Catalog.Register(ds, st); err != nil {
		t.Fatal(err)
	}
	res, rep, err := NewDynamic().Run(ctx, "SELECT t.id, t.v FROM t ORDER BY t.v")
	if err != nil {
		t.Fatalf("%v\n%v", err, rep)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// NULL sorts first, then 'a', then 'b'.
	want := []int64{2, 3, 1}
	for i, w := range want {
		if res.Rows[i][0].I() != w {
			t.Fatalf("order = %v, want ids %v", res.Rows, want)
		}
	}
	_ = fmt.Sprint() // keep fmt import if unused paths change
}
