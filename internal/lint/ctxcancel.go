package lint

import (
	"go/ast"

	"dynopt/internal/lint/analysis"
)

// ctxCancelPackages are the execution layers whose chunk loops must observe
// cancellation: the physical operators and the stage driver.
var ctxCancelPackages = []string{"internal/engine", "internal/core"}

// CtxCancel enforces chunk-boundary cancellation: in the engine and core
// packages, any for/range loop that pulls from a cursor or row stream (a
// zero-argument Next()/next() method call in its body) must also check
// Context.Err() inside the loop — at every iteration or on a row-count
// stride — so a cancelled query stops at the next chunk boundary instead of
// running its stage to completion. Loops whose upstream provably checks
// (e.g. a drain-after-failure loop) carry //dynopt:cancel-ok <reason>.
var CtxCancel = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc: "chunk loops (pulling via Next/next) in internal/engine and internal/core must " +
		"check Err() at chunk boundaries; exempt with //dynopt:cancel-ok <reason>",
	Run: runCtxCancel,
}

func runCtxCancel(pass *analysis.Pass) (any, error) {
	inScope := false
	for _, p := range ctxCancelPackages {
		if pathHasSuffix(pass.PkgPath, p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.FileStart) {
			continue // test harness loops are not query execution paths
		}
		dirs := parseDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			if !callsMethodNamed(body, "Next") && !callsMethodNamed(body, "next") {
				return true
			}
			if callsMethodNamed(body, "Err") {
				return true
			}
			if dir, ok := dirs.covering(n.Pos(), dirCancelOK); ok {
				if dir.reason == "" {
					pass.Reportf(dir.pos, "//dynopt:cancel-ok needs a reason")
				}
				return true
			}
			pass.Reportf(n.Pos(),
				"chunk loop pulls rows but never checks Err(): a cancelled query would run this stage to completion (check ctx.Err() at the chunk boundary, or //dynopt:cancel-ok <reason>)")
			return true
		})
	}
	return nil, nil
}

// callsMethodNamed reports whether the block contains a zero-argument
// method call with the given name, outside nested function literals (a
// closure's body runs on its own schedule, not per iteration of this loop).
func callsMethodNamed(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name && len(call.Args) == 0 {
			found = true
			return false
		}
		return true
	})
	return found
}
