package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// The loader resolves packages in two tiers: module packages (ours) are
// listed by `go list -deps -test`, parsed, and type-checked here in
// dependency order — including the test-augmented variants, so _test.go
// files are analyzed too — while standard-library dependencies delegate to
// go/importer's source importer, which understands GOROOT layout (and its
// internal vendoring) without any precompiled export data. cgo is disabled
// for both tiers so every stdlib package resolves to its pure-Go fallback.

func init() {
	build.Default.CgoEnabled = false
}

var (
	stdImporterOnce sync.Once
	stdImporter     types.ImporterFrom
	stdFset         = token.NewFileSet()
)

// stdlibImporter returns the shared source importer for GOROOT packages.
// It is process-wide: stdlib type-checking is expensive and identical for
// every Load call.
func stdlibImporter() types.ImporterFrom {
	stdImporterOnce.Do(func() {
		stdImporter = importer.ForCompiler(stdFset, "source", nil).(types.ImporterFrom)
	})
	return stdImporter
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns in the module rooted at dir (test variants included)
// and returns the matched packages, type-checked with full syntax and test
// files. Dependencies are type-checked as needed but not returned.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-test",
		"-json=ImportPath,Name,Dir,Standard,DepOnly,ForTest,GoFiles,CgoFiles,Imports,ImportMap,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := map[string]*listPkg{}
	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := &listPkg{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %w", err)
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp)
	}

	ld := &moduleLoader{byPath: byPath, fset: token.NewFileSet(), typed: map[string]*Package{}}
	var analyzed []*Package
	for _, lp := range order {
		if lp.DepOnly || lp.Standard {
			continue
		}
		// The synthetic test-main package ("x.test") points at a generated
		// file that only exists inside the build cache; nothing in it is
		// ours to analyze.
		if strings.HasSuffix(lp.ImportPath, ".test") && lp.Name == "main" {
			continue
		}
		// A pattern matches both "x" and its augmented variant "x [x.test]";
		// analyzing both would duplicate every non-test diagnostic. Keep the
		// augmented one (it is a superset), keep "x" only when no test
		// variant exists, and keep external test packages ("x_test [x.test]").
		if lp.ForTest == "" {
			if _, ok := byPath[lp.ImportPath+" ["+lp.ImportPath+".test]"]; ok {
				continue
			}
		}
		pkg, err := ld.typecheck(lp.ImportPath)
		if err != nil {
			return nil, err
		}
		analyzed = append(analyzed, pkg)
	}
	if len(analyzed) == 0 {
		return nil, fmt.Errorf("go list %s matched no packages", strings.Join(patterns, " "))
	}
	return analyzed, nil
}

// moduleLoader type-checks module packages in dependency order, memoized.
type moduleLoader struct {
	byPath map[string]*listPkg
	fset   *token.FileSet
	typed  map[string]*Package
	stack  []string
}

// realPath strips the test-variant suffix: "x [x.test]" → "x".
func realPath(p string) string {
	if i := strings.IndexByte(p, ' '); i >= 0 {
		return p[:i]
	}
	return p
}

func (ld *moduleLoader) typecheck(path string) (*Package, error) {
	if pkg, ok := ld.typed[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s: %s", path, strings.Join(ld.stack, " -> "))
		}
		return pkg, nil
	}
	lp, ok := ld.byPath[path]
	if !ok {
		return nil, fmt.Errorf("package %s not in go list output", path)
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("package %s: %s", path, lp.Error.Err)
	}
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("package %s: cgo files present despite CGO_ENABLED=0", path)
	}
	ld.typed[path] = nil // cycle marker
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	var files []*ast.File
	testFiles := map[*ast.File]bool{}
	for _, name := range lp.GoFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(lp.Dir, fn)
		}
		f, err := parser.ParseFile(ld.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		testFiles[f] = strings.HasSuffix(name, "_test.go")
	}

	info := newInfo()
	conf := &types.Config{
		Importer: &pkgImporter{ld: ld, importMap: lp.ImportMap},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(realPath(path), ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{
		PkgPath:   realPath(path),
		Name:      lp.Name,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TestFiles: testFiles,
	}
	ld.typed[path] = pkg
	return pkg, nil
}

// pkgImporter resolves one package's imports: module packages recurse into
// the loader (honoring the test-variant ImportMap), everything else goes to
// the stdlib source importer.
type pkgImporter struct {
	ld        *moduleLoader
	importMap map[string]string
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *pkgImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if lp, ok := im.ld.byPath[path]; ok && !lp.Standard {
		pkg, err := im.ld.typecheck(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdlibImporter().ImportFrom(realPath(path), srcDir, mode)
}
