package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture packages under root (GOPATH layout,
// root/src/<path>) and checks the analyzer's diagnostics against `// want`
// comments, analysistest-style: a comment
//
//	// want `regexp` `regexp`
//
// on a line declares that the analyzer reports exactly len(regexps)
// diagnostics on that line, each matched by one of the patterns. Lines
// without a want comment must produce no diagnostics. Patterns are quoted
// with backquotes or double quotes.
func RunFixture(t *testing.T, root string, a *Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := LoadGOPATH(root, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	fset := pkgs[0].Fset
	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		got[key{pos.Filename, pos.Line}] = append(got[key{pos.Filename, pos.Line}], d.Message)
	}

	want := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns, perr := parseWant(c.Text)
					if perr != nil {
						t.Errorf("%s: %v", fset.Position(c.Pos()), perr)
						continue
					}
					if patterns == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					want[key{pos.Filename, pos.Line}] = append(want[key{pos.Filename, pos.Line}], patterns...)
				}
			}
		}
	}

	for k, res := range want {
		msgs := got[k]
		if len(msgs) != len(res) {
			t.Errorf("%s:%d: got %d diagnostics %q, want %d matching %v", k.file, k.line, len(msgs), msgs, len(res), res)
			continue
		}
		used := make([]bool, len(msgs))
		for _, re := range res {
			found := false
			for i, m := range msgs {
				if !used[i] && re.MatchString(m) {
					used[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: no diagnostic matching %q among %q", k.file, k.line, re, msgs)
			}
		}
	}
	for k, msgs := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s:%d: unexpected diagnostics %q", k.file, k.line, msgs)
		}
	}
}

// parseWant extracts the regexps from a `// want ...` comment, returning
// (nil, nil) for ordinary comments.
func parseWant(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` in want comment")
			}
			lit = rest[1 : 1+end]
			rest = rest[end+2:]
		case '"':
			var err error
			q := rest
			if end := strings.IndexByte(rest[1:], '"'); end >= 0 {
				q = rest[:end+2]
				rest = rest[end+2:]
			} else {
				return nil, fmt.Errorf("unterminated \" in want comment")
			}
			lit, err = strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", q, err)
			}
		default:
			return nil, fmt.Errorf("want comment: expected quoted regexp, got %q", rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

// Inspect walks every file in the pass with ast.Inspect.
func Inspect(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

// Line returns the 1-based line of pos.
func Line(fset *token.FileSet, pos token.Pos) int {
	return fset.Position(pos).Line
}
