package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// LoadGOPATH loads packages from a GOPATH-style fixture tree: the package
// with import path "p" lives in root/src/p. This is the analysistest layout
// — fixture packages can import each other by those paths, and anything not
// found under the tree resolves against the standard library. One package
// per directory; _test.go files are part of the package.
func LoadGOPATH(root string, paths ...string) ([]*Package, error) {
	ld := &gopathLoader{root: root, fset: token.NewFileSet(), typed: map[string]*Package{}}
	var out []*Package
	for _, p := range paths {
		pkg, err := ld.typecheck(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type gopathLoader struct {
	root  string
	fset  *token.FileSet
	typed map[string]*Package
}

func (ld *gopathLoader) dirOf(path string) string {
	return filepath.Join(ld.root, "src", filepath.FromSlash(path))
}

func (ld *gopathLoader) typecheck(path string) (*Package, error) {
	if pkg, ok := ld.typed[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("fixture import cycle through %s", path)
		}
		return pkg, nil
	}
	dir := ld.dirOf(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %s: no .go files in %s", path, dir)
	}
	ld.typed[path] = nil // cycle marker
	var files []*ast.File
	testFiles := map[*ast.File]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		testFiles[f] = strings.HasSuffix(name, "_test.go")
	}
	info := newInfo()
	conf := &types.Config{
		Importer: &gopathImporter{ld: ld},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", path, err)
	}
	pkg := &Package{
		PkgPath:   path,
		Name:      files[0].Name.Name,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TestFiles: testFiles,
	}
	ld.typed[path] = pkg
	return pkg, nil
}

type gopathImporter struct {
	ld *gopathLoader
}

func (im *gopathImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *gopathImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if st, err := os.Stat(im.ld.dirOf(path)); err == nil && st.IsDir() {
		pkg, err := im.ld.typecheck(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdlibImporter().ImportFrom(path, srcDir, mode)
}
