// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: Analyzer/Pass/Diagnostic types,
// a `go list`-driven package loader, a GOPATH-style fixture loader, and an
// analysistest-compatible `// want` runner. The build environment pins no
// external modules (the container has no module proxy), so the suite carries
// this shim instead of depending on x/tools; analyzers are written against
// the same API shape and would port to the real framework by swapping
// imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI selection.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run applies the check to one package, reporting findings via
	// pass.Report. The returned value is unused (kept for x/tools API
	// shape).
	Run func(pass *Pass) (any, error)
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's real import path: test-augmented variants
	// ("x [x.test]") report under "x".
	PkgPath string
	// IsTestFile reports whether the file at pos comes from a _test.go file.
	IsTestFile func(pos token.Pos) bool

	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position // resolved by Run
	Message  string
	Analyzer string // filled by Run
}

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string // real import path (brackets stripped for test variants)
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TestFiles marks which of Files came from _test.go sources.
	TestFiles map[*ast.File]bool
}

// Run applies every analyzer to every package and returns the diagnostics
// sorted by position. Analyzer errors abort the run: a check that cannot
// execute must fail the gate, not silently pass it.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.PkgPath,
				IsTestFile: func(pos token.Pos) bool {
					for f, isTest := range pkg.TestFiles {
						if f.FileStart <= pos && pos <= f.FileEnd {
							return isTest
						}
					}
					return false
				},
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				d.Position = pkg.Fset.Position(d.Pos)
				diags = append(diags, d)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	// Sort by resolved position: packages may come from different FileSets,
	// so raw token.Pos values are not comparable across them.
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// newInfo returns a types.Info with every map analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
