package lint

import (
	"go/ast"
	"go/types"

	"dynopt/internal/lint/analysis"
)

// GrantClose enforces the resource-release contract of the memory governor
// and the spill manager: a *cluster.Grant obtained from Governor.Grant()
// must reach Close() on every exit path of the acquiring function, and a
// *storage.SpillManager from NewSpillManager must reach Sweep() — normally
// via defer, the only form that survives errors and panics. A value that
// escapes the function (returned, stored in a field or composite literal,
// passed to another call) transfers the obligation and is not flagged.
// Test files are exempt: lifecycle tests close, double-close, and contend
// grants mid-stream by design.
var GrantClose = &analysis.Analyzer{
	Name: "grantclose",
	Doc: "Governor.Grant() results must be defer-Closed and NewSpillManager results " +
		"defer-Swept on every exit path of the acquiring function (or escape it)",
	Run: runGrantClose,
}

// acquisition describes one tracked resource acquisition form.
type acquisition struct {
	kind    string // human label
	release string // required method name
}

func runGrantClose(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.FileStart) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFuncAcquisitions(pass, fd)
			return true
		})
	}
	return nil, nil
}

// acquisitionOf classifies a call expression as a tracked acquisition.
func acquisitionOf(call *ast.CallExpr) (acquisition, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Grant":
			if len(call.Args) == 0 {
				return acquisition{kind: "governor grant", release: "Close"}, true
			}
		case "NewSpillManager":
			return acquisition{kind: "spill manager", release: "Sweep"}, true
		}
	case *ast.Ident:
		if fun.Name == "NewSpillManager" {
			return acquisition{kind: "spill manager", release: "Sweep"}, true
		}
	}
	return acquisition{}, false
}

func checkFuncAcquisitions(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			acq, ok := acquisitionOf(call)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue // field/index store: the target owns the release now
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "%s discarded: the result must be bound so %s() can run on every exit path", acq.kind, acq.release)
				continue
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if escapes(pass, fd, obj) {
				continue // ownership transferred; the receiver releases it
			}
			if !deferredRelease(pass, fd, obj, acq.release) {
				pass.Reportf(call.Pos(),
					"%s %s is never defer-%s'd: an error or panic between here and the release leaks it (defer %s.%s(), or let it escape to an owner)",
					acq.kind, id.Name, acq.release, id.Name, acq.release)
			}
		}
		return true
	})
}

// deferredRelease reports whether the function defers obj.<release>() —
// directly, or inside a deferred func literal.
func deferredRelease(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, release string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		if callsMethodOn(pass, ds.Call, obj, release) {
			found = true
			return false
		}
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && callsMethodOn(pass, call, obj, release) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// callsMethodOn reports whether call is obj.<name>(...).
func callsMethodOn(pass *analysis.Pass, call *ast.CallExpr, obj types.Object, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

// escapes reports whether obj leaves the function's hands: returned, passed
// as a call argument, stored into a field, composite literal, index, map,
// channel, or another variable. Any such use transfers the release
// obligation beyond what a per-function check can see.
func escapes(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	esc := false
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj || len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.SelectorExpr:
			// obj.Method(...) or obj.Field — receiver/field access, local use.
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if rhs == ast.Expr(id) {
					esc = true // aliased into another variable (or field)
				}
			}
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if arg == ast.Expr(id) {
					esc = true
				}
			}
		case *ast.ReturnStmt, *ast.KeyValueExpr, *ast.CompositeLit,
			*ast.SendStmt, *ast.IndexExpr, *ast.UnaryExpr:
			esc = true
		}
		return true
	})
	return esc
}
