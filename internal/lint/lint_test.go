package lint

import (
	"strings"
	"testing"

	"dynopt/internal/lint/analysis"
)

func TestHotAllocFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", HotAlloc, "hotalloc/hot")
}

func TestMeterSizeFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", MeterSize, "metersize/internal/engine", "metersize/other")
}

func TestGrantCloseFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", GrantClose, "grantclose/fix")
}

func TestCtxCancelFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", CtxCancel, "ctxcancel/internal/engine", "ctxcancel/other")
}

func TestTempNameFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", TempName, "tempname/app", "tempname/internal/catalog")
}

func TestBenchAllocsFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", BenchAllocs, "benchallocs/bench")
}

func TestFaultPointFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", FaultPoint, "faultpoint/app")
}

func TestPageDecodeFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", PageDecode, "pagedecode/app", "pagedecode/internal/types")
}

// TestEmptyReasonDirectives: an escape hatch without a reason must be
// flagged, never honored silently. (Checked outside the want-comment
// machinery: the diagnostic lands on the directive's own line, which the
// directive comment already occupies.)
func TestEmptyReasonDirectives(t *testing.T) {
	pkgs, err := analysis.LoadGOPATH("testdata", "noreason/internal/engine", "noreason/hot", "noreason/pd")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"//dynopt:size-ok needs a reason",
		"//dynopt:cancel-ok needs a reason",
		"//dynopt:alloc-ok needs a reason",
		"//dynopt:cold-ok needs a reason",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in %v", want, diags)
		}
	}
	if len(diags) != len(wantSubstrings) {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), len(wantSubstrings), diags)
	}
}

// TestSeededSelfTest mirrors the CI self-test: the seeded violation tree
// must trip every analyzer in the suite.
func TestSeededSelfTest(t *testing.T) {
	pkgs, err := analysis.LoadGOPATH("testdata", "seeded/pkg", "seeded/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Analyzer] = true
	}
	for _, a := range All() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s did not fire on the seeded tree", a.Name)
		}
	}
}

// TestLoadModule smoke-tests the go list loader against a real module
// package, including its test-augmented variant.
func TestLoadModule(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/sketch")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	sawTestFile := false
	for _, p := range pkgs {
		if p.PkgPath != "dynopt/internal/sketch" {
			t.Errorf("unexpected package %s", p.PkgPath)
		}
		for _, isTest := range p.TestFiles {
			sawTestFile = sawTestFile || isTest
		}
	}
	if !sawTestFile {
		t.Error("test-augmented variant not loaded: no _test.go files seen")
	}
}
