package lint

import (
	"go/ast"
	"strings"

	"dynopt/internal/lint/analysis"
)

// BenchAllocs enforces allocation reporting in benchmarks: every
// Benchmark* function must call b.ReportAllocs() so allocs/op regressions —
// the very thing the hot-path contract defends — show up in every benchmark
// run instead of only when someone remembers -benchmem.
var BenchAllocs = &analysis.Analyzer{
	Name: "benchallocs",
	Doc:  "every Benchmark* function must call b.ReportAllocs()",
	Run:  runBenchAllocs,
}

func runBenchAllocs(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "Benchmark") {
				continue
			}
			param, ok := benchParam(fd)
			if !ok {
				continue
			}
			if !callsMethodNamedOnIdent(fd.Body, param, "ReportAllocs") {
				pass.Reportf(fd.Pos(), "%s never calls %s.ReportAllocs(): allocs/op regressions go unnoticed", fd.Name.Name, param)
			}
		}
	}
	return nil, nil
}

// benchParam returns the name of the single *testing.B parameter, if the
// function has exactly that shape.
func benchParam(fd *ast.FuncDecl) (string, bool) {
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
		return "", false
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "B" {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "testing" {
		return "", false
	}
	return params.List[0].Names[0].Name, true
}

// callsMethodNamedOnIdent reports whether the block contains a call
// <recv>.<name>(), matching the receiver by identifier name (sufficient for
// the *testing.B parameter, which is never shadowed in practice).
func callsMethodNamedOnIdent(body *ast.BlockStmt, recv, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			found = true
			return false
		}
		return true
	})
	return found
}
