package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dynopt/internal/faults"
	"dynopt/internal/lint/analysis"
)

// FaultPoint enforces the fault-injection point contract: every
// faults.Point("name") literal must name an entry in the package-level
// point table in internal/faults. A point spelled only at an injection site
// is a dead point — Arm panics on it, so no test can ever trigger it, and
// the site silently never fires. The argument must be a string literal:
// a computed name defeats both this check and greppability. The table is
// the real one — the analyzer imports internal/faults — so the check cannot
// drift from the registry it guards.
var FaultPoint = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "faults.Point arguments must be string literals registered in the " +
		"internal/faults point table",
	Run: runFaultPoint,
}

func runFaultPoint(pass *analysis.Pass) (any, error) {
	// The faults package itself defines Point and exercises arbitrary names
	// in its own tests.
	if pathHasSuffix(pass.PkgPath, "internal/faults") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Point" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !isFaultsPkgName(pass, id) {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Args[0].Pos(),
					"faults.Point argument must be a string literal so the point table is checkable statically")
				return true
			}
			name := strings.Trim(lit.Value, "`\"")
			if !faults.Known(name) {
				pass.Reportf(lit.Pos(),
					"injection point %q is not in the internal/faults point table — a dead point no test can arm", name)
			}
			return true
		})
	}
	return nil, nil
}

// isFaultsPkgName reports whether the identifier resolves to an imported
// package whose path's last segment is "faults" (type information when
// available, the spelled name as fallback for partially typed fixtures).
func isFaultsPkgName(pass *analysis.Pass, id *ast.Ident) bool {
	if pass.TypesInfo != nil {
		if obj, ok := pass.TypesInfo.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && pathHasSuffix(pn.Imported().Path(), "faults")
		}
	}
	return id.Name == "faults"
}
