// Package pd (fixture) carries a cold-ok directive with the reason omitted:
// it must be flagged, not honored silently.
package pd

type PageData struct{ NRows int }

func (pd *PageData) Tuple(r int) []int { return nil }

func coldWaivedBadly(pd *PageData) {
	//dynopt:cold-ok
	for r := 0; r < pd.NRows; r++ {
		_ = pd.Tuple(r)
	}
}
