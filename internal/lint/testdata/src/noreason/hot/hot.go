// Package hot (fixture) carries an alloc-ok directive with the reason
// omitted: it must be flagged, not honored silently.
package hot

//dynopt:hotpath
func hotWaivedBadly(n int) []int {
	//dynopt:alloc-ok
	return make([]int, n)
}
