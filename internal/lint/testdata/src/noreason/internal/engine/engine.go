// Package engine (fixture) carries escape-hatch directives with the reason
// omitted: every one must be flagged, not honored silently.
package engine

type tuple []int

func (t tuple) EncodedSize() int { return len(t) }

type cursor struct{}

func (*cursor) Next() (int, error) { return 0, nil }

func emptySizeOK(t tuple) int {
	return t.EncodedSize() //dynopt:size-ok
}

func emptyCancelOK(cur *cursor) {
	//dynopt:cancel-ok
	for {
		if _, err := cur.Next(); err != nil {
			return
		}
	}
}
