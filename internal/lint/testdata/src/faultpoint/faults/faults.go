// Package faults (fixture) stands in for dynopt/internal/faults: the
// analyzer treats any imported package whose path ends in "faults" as the
// injection registry, but always validates point names against the real
// point table.
package faults

func Point(name string) string { return name }

type Registry struct{}

func (*Registry) Fire(point string) error { return nil }
