// Package app (fixture) exercises faultpoint: injection point names must be
// string literals registered in the real internal/faults point table.
package app

import "faultpoint/faults"

func use(r *faults.Registry) error {
	if err := r.Fire(faults.Point("spill.append")); err != nil { // registered: fine
		return err
	}
	if err := r.Fire(faults.Point("spill.corrupt")); err != nil { // registered (corruption injection): fine
		return err
	}
	if err := r.Fire(faults.Point("spill.appnd")); err != nil { // want `not in the internal/faults point table`
		return err
	}
	name := "spill.create"
	return r.Fire(faults.Point(name)) // want `must be a string literal`
}

// pointless is not the registry's Point: a same-named method on another
// receiver stays out of scope.
type grid struct{}

func (grid) Point(name string) string { return name }

func unrelated() string {
	var g grid
	return g.Point("whatever") // not faults.Point: fine
}
