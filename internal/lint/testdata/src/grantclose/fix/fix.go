// Package fix exercises grantclose: local stand-ins for the governor grant
// and the spill manager, acquired with and without the deferred release.
package fix

type Grant struct{}

func (*Grant) Close() {}

func (*Grant) Reserve(n int64) bool { return true }

type Governor struct{}

func (Governor) Grant() *Grant { return &Grant{} }

type SpillManager struct{}

func (*SpillManager) Sweep() error { return nil }

func NewSpillManager(root, prefix string) *SpillManager { return &SpillManager{} }

type holder struct{ g *Grant }

func leaky(gov Governor) {
	gr := gov.Grant() // want `governor grant gr is never defer-Close'd`
	gr.Reserve(1)
}

func closedInline(gov Governor) {
	gr := gov.Grant() // want `governor grant gr is never defer-Close'd`
	gr.Reserve(1)
	gr.Close() // a plain call does not survive errors or panics
}

func ok(gov Governor) {
	gr := gov.Grant()
	defer gr.Close()
	gr.Reserve(1)
}

func okFuncLit(gov Governor) {
	gr := gov.Grant()
	defer func() {
		gr.Close()
	}()
}

func escapesByReturn(gov Governor) *Grant {
	gr := gov.Grant()
	return gr
}

func escapesByStore(gov Governor, h *holder) {
	gr := gov.Grant()
	h.g = gr
}

func discarded(gov Governor) {
	_ = gov.Grant() // want `governor grant discarded`
}

func leakySpill() {
	sm := NewSpillManager("root", "q1_") // want `spill manager sm is never defer-Sweep'd`
	sm.Sweep()
}

func okSpill() error {
	sm := NewSpillManager("root", "q1_")
	defer sm.Sweep()
	return nil
}
