// Package types (fixture) stands in for dynopt/internal/types: the codec's
// own implementation loops over its buffers by definition and is out of the
// pagedecode analyzer's scope.
package types

type Tuple []int

type PageData struct {
	NRows int
}

func (pd *PageData) Value(c, r int) int { return 0 }

func (pd *PageData) Tuple(r int) Tuple {
	t := make(Tuple, 1)
	for c := range t {
		t[c] = pd.Value(c, r) // codec implementation: exempt
	}
	return t
}
