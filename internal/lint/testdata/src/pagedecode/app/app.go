// Package app exercises the pagedecode analyzer: per-row PageData.Tuple and
// PageData.Value loops must sit inside a //dynopt:hotpath region or carry the
// cold-ok waiver; same-named methods on other receivers stay out of scope.
package app

type Tuple []int

// PageData stands in for dynopt/internal/types.PageData: the analyzer
// matches the receiver by type name.
type PageData struct {
	NRows int
}

func (pd *PageData) Tuple(r int) Tuple           { return nil }
func (pd *PageData) Value(c, r int) int          { return 0 }
func (pd *PageData) DecodePage(buf []byte) error { return nil }

//dynopt:hotpath
func hotFunc(pd *PageData, win []Tuple) {
	for r := range win {
		win[r] = pd.Tuple(r) // enclosing function is hot: fine
	}
}

func hotLoop(pd *PageData, win []Tuple) {
	//dynopt:hotpath
	for r := range win {
		win[r] = pd.Tuple(r) // the loop itself is hot: fine
	}
}

func bareTuple(pd *PageData) []Tuple {
	out := make([]Tuple, 0, pd.NRows)
	for r := 0; r < pd.NRows; r++ { // want `page-decode inner loop \(PageData.Tuple\) outside`
		out = append(out, pd.Tuple(r))
	}
	return out
}

func bareValue(pd *PageData) int {
	sum := 0
	for r := 0; r < pd.NRows; r++ { // want `page-decode inner loop \(PageData.Value\) outside`
		sum += pd.Value(0, r)
	}
	return sum
}

func coldWalk(pd *PageData) []Tuple {
	var out []Tuple
	//dynopt:cold-ok transient materialization for a one-off rebuild
	for r := 0; r < pd.NRows; r++ {
		out = append(out, pd.Tuple(r))
	}
	return out
}

// otherRecv has a same-named method on a different receiver: out of scope.
type otherRecv struct{}

func (otherRecv) Tuple(r int) Tuple { return nil }

func unrelated(o otherRecv, n int) {
	for r := 0; r < n; r++ {
		_ = o.Tuple(r) // not PageData: fine
	}
}

// outsideLoop: a decode call not inside any loop is not an inner loop.
func outsideLoop(pd *PageData) Tuple { return pd.Tuple(0) }
