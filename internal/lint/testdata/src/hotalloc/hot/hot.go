// Package hot exercises the hotalloc analyzer: every allocating construct
// inside a //dynopt:hotpath region, the alloc-ok escape hatch, and silence
// on non-annotated code.
package hot

import "fmt"

type sinkT struct{}

func (sinkT) accept(v interface{}) {}

//dynopt:hotpath
func hotMake(n int) []int {
	buf := make([]int, n) // want `hot path: make allocates`
	return buf
}

//dynopt:hotpath
func hotNew() *int {
	return new(int) // want `hot path: new allocates`
}

//dynopt:hotpath
func hotAppend(dst, src []int) []int {
	out := dst
	for _, v := range src {
		out = append(out, v) // reused destination: no diagnostic
	}
	other := append(src, 1) // want `append onto a non-reused slice`
	_ = other
	return out
}

//dynopt:hotpath
func hotFmt(v int) string {
	return fmt.Sprintf("%d", v) // want `hot path: fmt call allocates`
}

//dynopt:hotpath
func hotClosure() int {
	f := func() int { return 1 } // want `func literal allocates a closure`
	return f()
}

//dynopt:hotpath
func hotCompositePtr() *sinkT {
	return &sinkT{} // want `&composite literal escapes to the heap`
}

//dynopt:hotpath
func hotSliceLit() {
	xs := []int{1, 2} // want `slice/map literal allocates`
	_ = xs
}

//dynopt:hotpath
func hotArgBox(s sinkT, v int) {
	s.accept(v) // want `argument boxes int`
}

//dynopt:hotpath
func hotAssignBox(v int) {
	var i interface{}
	i = v // want `assignment boxes int`
	_ = i
}

//dynopt:hotpath
func hotReturnBox(v int) interface{} {
	return v // want `return boxes int`
}

//dynopt:hotpath
func hotConvertBox(v int) {
	_ = any(v) // want `conversion boxes int`
}

//dynopt:hotpath
func hotWaived(n int) []int {
	//dynopt:alloc-ok amortized: buffer grows geometrically across chunks
	return make([]int, n)
}

// warmOutside is not annotated as a whole: only the marked loop is hot.
func warmOutside(n int) {
	xs := make([]int, 0, n) // outside the region: no diagnostic
	//dynopt:hotpath
	for i := 0; i < n; i++ {
		xs = append(xs, i)
		ys := make([]int, 1) // want `hot path: make allocates`
		_ = ys
	}
	_ = xs
}

// coldAllocates has no directive anywhere: hotalloc must stay silent no
// matter how freely it allocates.
func coldAllocates() []string {
	return []string{fmt.Sprint(1)}
}

// kernelCompact mirrors the vectorized-kernel idiom: in-place selection
// narrowing over typed payload slices. Pure index shuffling — the analyzer
// must stay silent.
//
//dynopt:hotpath
func kernelCompact(vals []int64, null []bool, sel []int32, cut int64) []int32 {
	out := sel[:0]
	for _, r := range sel {
		if !null[r] && vals[r] < cut {
			out = append(out, r) // narrowing into the input's backing: reused
		}
	}
	return out
}

// kernelAllocates is the anti-pattern the idiom exists to avoid: a kernel
// that builds a fresh selection per call.
//
//dynopt:hotpath
func kernelAllocates(vals []int64, sel []int32, cut int64) []int32 {
	out := make([]int32, 0, len(sel)) // want `hot path: make allocates`
	for _, r := range sel {
		if vals[r] < cut {
			out = append(out, r)
		}
	}
	return out
}

// kernelGather mirrors the column-gather idiom: grow-once scratch waived by
// the escape hatch, then a tight decode loop that must stay allocation-free.
func kernelGather(rows [][]int64, col int, scratch []int64) []int64 {
	if cap(scratch) < len(rows) {
		//dynopt:alloc-ok amortized: gather buffer reused across windows
		scratch = make([]int64, len(rows))
	}
	scratch = scratch[:len(rows)]
	//dynopt:hotpath
	for r, t := range rows {
		scratch[r] = t[col]
	}
	return scratch
}
