// Package pkg deliberately violates the hotalloc, grantclose, tempname, and
// benchallocs contracts. The CI self-test runs the multichecker against the
// seeded tree and asserts the gate fires with every analyzer; if a check
// goes silent, the self-test fails before the check can rot.
package pkg

import "testing"

type grant struct{}

func (*grant) Close() {}

type governor struct{}

func (governor) Grant() *grant { return &grant{} }

//dynopt:hotpath
func hotSeed(n int) []int {
	return make([]int, n) // hotalloc must fire here
}

func leakSeed(g governor) {
	gr := g.Grant() // grantclose must fire here
	gr.Close()
}

func tempSeed() string {
	return "tmp_seeded" // tempname must fire here
}

func BenchmarkSeeded(b *testing.B) { // benchallocs must fire here
	for i := 0; i < b.N; i++ {
	}
}
