// Package pkg deliberately violates the hotalloc, grantclose, tempname,
// benchallocs, and faultpoint contracts. The CI self-test runs the
// multichecker against the seeded tree and asserts the gate fires with
// every analyzer; if a check goes silent, the self-test fails before the
// check can rot.
package pkg

import (
	"testing"

	"seeded/faults"
)

type grant struct{}

func (*grant) Close() {}

type governor struct{}

func (governor) Grant() *grant { return &grant{} }

//dynopt:hotpath
func hotSeed(n int) []int {
	return make([]int, n) // hotalloc must fire here
}

func leakSeed(g governor) {
	gr := g.Grant() // grantclose must fire here
	gr.Close()
}

func tempSeed() string {
	return "tmp_seeded" // tempname must fire here
}

func pointSeed() string {
	return faults.Point("no.such.point") // faultpoint must fire here
}

type PageData struct{ NRows int }

func (pd *PageData) Tuple(r int) []int { return nil }

func decodeSeed(pd *PageData) {
	for r := 0; r < pd.NRows; r++ { // pagedecode must fire here
		_ = pd.Tuple(r)
	}
}

func BenchmarkSeeded(b *testing.B) { // benchallocs must fire here
	for i := 0; i < b.N; i++ {
	}
}
