// Package engine (seeded) deliberately violates the metersize and ctxcancel
// contracts for the CI self-test.
package engine

type row []byte

func (r row) EncodedSize() int { return len(r) }

type cursor struct{}

func (*cursor) Next() (row, error) { return nil, nil }

func pump(c *cursor) int {
	total := 0
	for { // ctxcancel must fire here
		r, err := c.Next()
		if err != nil {
			return total
		}
		total += r.EncodedSize() // metersize must fire here
	}
}
