// Package faults (fixture) is the seeded tree's stand-in injection
// registry, so seeded/pkg can spell a dead point for the faultpoint
// self-test.
package faults

func Point(name string) string { return name }
