// Package other (fixture) is outside the ctxcancel scope: cursor loops here
// are not query execution paths.
package other

type cursor struct{}

func (*cursor) Next() (int, error) { return 0, nil }

func pump(cur *cursor) {
	for {
		if _, err := cur.Next(); err != nil {
			return
		}
	}
}
