// Package engine (fixture) exercises ctxcancel: chunk-pulling loops in an
// internal/engine path must check Err() at the chunk boundary.
package engine

type ctxT struct{}

func (ctxT) Err() error { return nil }

type cursor struct{}

func (*cursor) Next() (int, error) { return 0, nil }

func bad(cur *cursor) {
	for { // want `chunk loop pulls rows but never checks Err`
		if _, err := cur.Next(); err != nil {
			return
		}
	}
}

func badRange(ctx ctxT, curs []*cursor) {
	for _, cur := range curs { // want `chunk loop pulls rows but never checks Err`
		if _, err := cur.Next(); err != nil {
			return
		}
	}
}

func good(ctx ctxT, cur *cursor) {
	for {
		if err := ctx.Err(); err != nil {
			return
		}
		if _, err := cur.Next(); err != nil {
			return
		}
	}
}

func waived(cur *cursor) {
	//dynopt:cancel-ok fixture: upstream producer checks per chunk
	for {
		if _, err := cur.Next(); err != nil {
			return
		}
	}
}

// closures run on their own schedule; a Next inside one does not make the
// enclosing loop a chunk loop.
func loopWithClosure(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}
