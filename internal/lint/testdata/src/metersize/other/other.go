// Package other (fixture) is outside the metersize scope: direct size
// walks here are fine.
package other

type tuple []int

func (t tuple) EncodedSize() int { return len(t) }

func allowed(t tuple) int {
	return t.EncodedSize()
}
