// Package engine (fixture) exercises metersize: its import path ends in
// internal/engine, so direct size walks are banned here.
package engine

type tuple []int

func (t tuple) EncodedSize() int { return len(t) }

func bytesOf(t tuple) int { return len(t) }

func bad(t tuple) int {
	return t.EncodedSize() // want `direct EncodedSize call`
}

func alsoBad(t tuple) int {
	return bytesOf(t) // want `direct bytesOf call`
}

func seeding(t tuple) int {
	return t.EncodedSize() //dynopt:size-ok fixture stands in for the one cache-seeding pass
}
