// Package catalog (fixture) owns the temp namespace: spelling the prefix
// here is the one allowed place.
package catalog

func TempPrefix(scope string) string { return "tmp_" + scope }
