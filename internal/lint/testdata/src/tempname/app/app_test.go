package app

// Test files may spell the prefix: leak tests probe the namespace by
// literal on purpose.
func probeName() string { return "tmp_probe" }
