// Package app (fixture) exercises tempname: hand-built temp prefixes
// outside internal/catalog are flagged.
package app

func tempFor(scope string) string {
	return "tmp_" + scope // want `hand-built temp name`
}

func unrelated() string {
	return "tmpdir" // no tmp_ prefix: fine
}
