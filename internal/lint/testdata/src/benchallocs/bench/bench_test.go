// Package bench (fixture) exercises benchallocs: every Benchmark* function
// taking *testing.B must call ReportAllocs.
package bench

import "testing"

func BenchmarkMissing(b *testing.B) { // want `BenchmarkMissing never calls b.ReportAllocs`
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkHas(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkSubBench(b *testing.B) {
	b.ReportAllocs()
	b.Run("sub", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
	})
}

// BenchmarkHelper does not have the benchmark signature: skipped.
func BenchmarkHelper(n int) int { return n }
