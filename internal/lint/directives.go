// Package lint holds the dynoptlint analyzer suite: machine-checked forms
// of the engine's prose contracts — the hot-path allocation-free rule, the
// cached ByteSize/PartBytes metering rule, the close-the-Grant /
// sweep-the-SpillDir rule, chunk-boundary cancellation, the temp-namespace
// naming rule, benchmark allocation reporting, fault-point registration,
// and page-decode hot-path coverage. Run via
// `go run ./cmd/dynoptlint ./...`; each analyzer's contract is documented on
// its Analyzer.Doc and in the README's "Static contracts" section.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"dynopt/internal/lint/analysis"
)

// Annotation directives. All are line-anchored comments:
//
//	//dynopt:hotpath            marks the following func decl (or its Doc's
//	                            owner) or the for/range statement on the next
//	                            line as a hot region for hotalloc
//	//dynopt:alloc-ok <reason>  suppresses hotalloc on its own line and the
//	                            next; the reason is mandatory
//	//dynopt:size-ok <reason>   marks a sanctioned direct EncodedSize walk
//	                            (the size-cache seeding layer) for metersize
//	//dynopt:cancel-ok <reason> exempts a chunk loop from ctxcancel
//	//dynopt:cold-ok <reason>   marks a deliberately cold page-decode walk
//	                            (transient materialization) for pagedecode
const (
	dirHotpath  = "hotpath"
	dirAllocOK  = "alloc-ok"
	dirSizeOK   = "size-ok"
	dirCancelOK = "cancel-ok"
	dirColdOK   = "cold-ok"
)

// directive is one //dynopt: comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
	line   int
}

// fileDirectives indexes one file's //dynopt: comments by line.
type fileDirectives struct {
	fset   *token.FileSet
	byLine map[int][]directive
}

// parseDirectives collects the //dynopt: comments of a file.
func parseDirectives(fset *token.FileSet, f *ast.File) *fileDirectives {
	d := &fileDirectives{fset: fset, byLine: map[int][]directive{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			body, ok := strings.CutPrefix(c.Text, "//dynopt:")
			if !ok {
				continue
			}
			name, reason, _ := strings.Cut(body, " ")
			line := fset.Position(c.Pos()).Line
			d.byLine[line] = append(d.byLine[line], directive{
				name:   name,
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
				line:   line,
			})
		}
	}
	return d
}

// at returns the named directive on exactly the given line, if any.
func (d *fileDirectives) at(line int, name string) (directive, bool) {
	for _, dir := range d.byLine[line] {
		if dir.name == name {
			return dir, true
		}
	}
	return directive{}, false
}

// covering returns the named directive covering a node: on the node's own
// line (trailing comment) or on the line above it (preceding comment).
func (d *fileDirectives) covering(pos token.Pos, name string) (directive, bool) {
	line := d.fset.Position(pos).Line
	if dir, ok := d.at(line, name); ok {
		return dir, true
	}
	return d.at(line-1, name)
}

// fileOf returns the *ast.File of the pass containing pos.
func fileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// pathHasSuffix reports whether an import path ends with the given
// slash-separated suffix on a segment boundary ("a/internal/engine" matches
// "internal/engine"; "a/myengine" does not).
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}
