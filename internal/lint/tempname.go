package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"dynopt/internal/lint/analysis"
)

// tempNamePackage is the one layer allowed to spell the temp-namespace
// prefix: the catalog owns temp-relation naming (and the DropPrefix sweep
// that keys off it), so every other package must go through
// catalog.TempPrefix / Context.TempName.
const tempNamePackage = "internal/catalog"

// TempName enforces the temp-relation naming contract: the "tmp_" prefix is
// an implementation detail of the catalog's temp namespace, and hand-built
// "tmp_..." strings elsewhere silently bypass scope-qualified naming — the
// relation then survives QueryCtx's DropPrefix sweep or, worse, collides
// across concurrent queries. Test files may spell the prefix: leak tests
// probe the namespace by literal on purpose.
var TempName = &analysis.Analyzer{
	Name: "tempname",
	Doc: `"tmp_"-prefixed string literals are only allowed in internal/catalog; ` +
		"everywhere else temp names must come from catalog.TempPrefix/Context.TempName",
	Run: runTempName,
}

func runTempName(pass *analysis.Pass) (any, error) {
	if pathHasSuffix(pass.PkgPath, tempNamePackage) {
		return nil, nil
	}
	// The analyzer itself must spell the prefix to detect it.
	if pathHasSuffix(pass.PkgPath, "internal/lint") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.FileStart) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			val := strings.Trim(lit.Value, "`\"")
			if strings.HasPrefix(val, "tmp_") {
				pass.Reportf(lit.Pos(),
					`hand-built temp name %s bypasses the catalog's temp namespace; use catalog.TempPrefix or Context.TempName`, lit.Value)
			}
			return true
		})
	}
	return nil, nil
}
