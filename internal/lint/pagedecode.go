package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"dynopt/internal/lint/analysis"
)

// PageDecode enforces the disk-native scan discipline: a loop that
// materializes rows out of a decoded page — calling PageData.Tuple or
// PageData.Value per row — is a page-decode inner loop and runs once per
// stored row, so it must sit inside a //dynopt:hotpath region where hotalloc
// audits it for per-row allocations. Deliberately cold decode walks (the
// transient materialization index builds and pilot sampling use) carry
// //dynopt:cold-ok <reason> instead. internal/types, the codec's own
// implementation, and test files are out of scope.
var PageDecode = &analysis.Analyzer{
	Name: "pagedecode",
	Doc: "page-decode inner loops (per-row PageData.Tuple/Value calls) must be " +
		"//dynopt:hotpath regions; mark deliberately cold decode walks //dynopt:cold-ok <reason>",
	Run: runPageDecode,
}

func runPageDecode(pass *analysis.Pass) (any, error) {
	if pathHasSuffix(pass.PkgPath, "internal/types") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile != nil && pass.IsTestFile(f.FileStart) {
			continue
		}
		dirs := parseDirectives(pass.Fset, f)
		hot := hotRegions(pass, f, dirs)
		covered := func(pos token.Pos) bool {
			for _, r := range hot {
				if r.Pos() <= pos && pos <= r.End() {
					return true
				}
			}
			return false
		}
		var loops []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
			}
			return true
		})
		// The innermost loop containing pos: loops nest, so the latest
		// starting one that still spans pos wins.
		innermost := func(pos token.Pos) ast.Node {
			var best ast.Node
			for _, l := range loops {
				if l.Pos() <= pos && pos <= l.End() && (best == nil || l.Pos() >= best.Pos()) {
					best = l
				}
			}
			return best
		}
		reported := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPageDataRowCall(pass, call) {
				return true
			}
			loop := innermost(call.Pos())
			if loop == nil || reported[loop] || covered(call.Pos()) {
				return true
			}
			if dir, ok := coldWaiver(dirs, loop, call); ok {
				if dir.reason == "" {
					pass.Reportf(dir.pos, "//dynopt:cold-ok needs a reason")
					reported[loop] = true
				}
				return true
			}
			reported[loop] = true
			pass.Reportf(loop.Pos(),
				"page-decode inner loop (%s) outside a //dynopt:hotpath region; annotate it hot or mark the cold walk //dynopt:cold-ok <reason>",
				callName(call))
			return true
		})
	}
	return nil, nil
}

// coldWaiver returns the cold-ok directive covering the loop or the decode
// call itself, if any.
func coldWaiver(dirs *fileDirectives, loop ast.Node, call *ast.CallExpr) (directive, bool) {
	if dir, ok := dirs.covering(loop.Pos(), dirColdOK); ok {
		return dir, true
	}
	return dirs.covering(call.Pos(), dirColdOK)
}

// isPageDataRowCall reports whether the call is a per-row accessor on the
// page codec: a Tuple or Value method whose receiver is types.PageData.
func isPageDataRowCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Tuple" && sel.Sel.Name != "Value") {
		return false
	}
	if pass.TypesInfo == nil {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "PageData"
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return "PageData." + sel.Sel.Name
	}
	return "page decode"
}
