package lint

import (
	"go/ast"

	"dynopt/internal/lint/analysis"
)

// meterSizePackages are the operator layers where per-row size walks are
// banned: metering there must go through the cached Relation.ByteSize /
// Relation.PartBytes / Dataset size-cache accessors, computed at most once
// per relation. The size-cache seeding layer (internal/types,
// internal/storage, internal/stats) computes sizes by definition and is out
// of scope.
var meterSizePackages = []string{"internal/engine", "internal/core", "internal/optimizer"}

// MeterSize enforces the cached-size metering rule: no direct
// Tuple/Value.EncodedSize (or legacy bytesOf) calls in operator packages.
// The one pass that legitimately walks rows to seed a size cache or a
// metering counter carries //dynopt:size-ok <reason>.
var MeterSize = &analysis.Analyzer{
	Name: "metersize",
	Doc: "operator packages must meter via cached Relation.ByteSize/PartBytes/Dataset sizes, " +
		"not direct EncodedSize walks; mark sanctioned cache-seeding passes //dynopt:size-ok <reason>",
	Run: runMeterSize,
}

func runMeterSize(pass *analysis.Pass) (any, error) {
	inScope := false
	for _, p := range meterSizePackages {
		if pathHasSuffix(pass.PkgPath, p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	for _, f := range pass.Files {
		dirs := parseDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			case *ast.Ident:
				name = fun.Name
			}
			if name != "EncodedSize" && name != "bytesOf" {
				return true
			}
			if dir, ok := dirs.covering(call.Pos(), dirSizeOK); ok {
				if dir.reason == "" {
					pass.Reportf(dir.pos, "//dynopt:size-ok needs a reason")
				}
				return true
			}
			pass.Reportf(call.Pos(),
				"direct %s call in an operator package: meter via the cached Relation.ByteSize/PartBytes or Dataset sizes, or mark the cache-seeding pass //dynopt:size-ok <reason>", name)
			return true
		})
	}
	return nil, nil
}
