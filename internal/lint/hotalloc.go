package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"dynopt/internal/lint/analysis"
)

// HotAlloc enforces the README's allocation-free contract for operator hot
// paths: inside a region annotated //dynopt:hotpath (a function, or a
// for/range statement), no construct that heap-allocates per row may appear
// unless waived with //dynopt:alloc-ok <reason>. Flagged constructs:
// make/new, &T{...} and slice/map composite literals, append that does not
// reuse its destination (x = append(x, ...)), fmt.* calls, func literals
// (closure allocation), and implicit interface boxing of non-pointer-shaped
// values. Non-annotated code is never inspected.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "hot-path regions annotated //dynopt:hotpath must not allocate per row; " +
		"waive deliberate amortized allocations with //dynopt:alloc-ok <reason>",
	Run: runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		dirs := parseDirectives(pass.Fset, f)
		roots := hotRegions(pass, f, dirs)
		seen := map[ast.Node]bool{}
		for _, root := range roots {
			checkHotRegion(pass, dirs, root, seen)
		}
	}
	return nil, nil
}

// hotRegions returns the file's //dynopt:hotpath-annotated regions: the
// bodies of annotated function declarations and annotated for/range
// statements. Regions nested inside another region are dropped so each
// violation reports once.
func hotRegions(pass *analysis.Pass, f *ast.File, dirs *fileDirectives) []ast.Node {
	var roots []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if funcIsHot(pass, dirs, n) {
				roots = append(roots, n)
			}
		case *ast.ForStmt, *ast.RangeStmt:
			if _, ok := dirs.covering(n.Pos(), dirHotpath); ok {
				roots = append(roots, n)
			}
		}
		return true
	})
	var out []ast.Node
	for _, r := range roots {
		nested := false
		for _, outer := range roots {
			if outer != r && outer.Pos() <= r.Pos() && r.End() <= outer.End() {
				nested = true
				break
			}
		}
		if !nested {
			out = append(out, r)
		}
	}
	return out
}

// funcIsHot reports whether a function declaration carries the hotpath
// directive, in its doc comment or on the line above the declaration.
func funcIsHot(pass *analysis.Pass, dirs *fileDirectives, fd *ast.FuncDecl) bool {
	start := analysis.Line(pass.Fset, fd.Pos()) - 1
	if fd.Doc != nil {
		start = analysis.Line(pass.Fset, fd.Doc.Pos())
	}
	end := analysis.Line(pass.Fset, fd.Pos())
	for line := start; line <= end; line++ {
		if _, ok := dirs.at(line, dirHotpath); ok {
			return true
		}
	}
	return false
}

// checkHotRegion walks one hot region and reports allocation sites.
func checkHotRegion(pass *analysis.Pass, dirs *fileDirectives, root ast.Node, seen map[ast.Node]bool) {
	// Appends of the reuse form x = append(x, ...) are the sanctioned way to
	// fill preallocated buffers; collect them first so the walk below flags
	// only non-reusing appends.
	reusedAppends := map[*ast.CallExpr]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if ok && builtinName(pass, call) == "append" && len(call.Args) > 0 &&
				exprEqual(pass, as.Lhs[i], call.Args[0]) {
				reusedAppends[call] = true
			}
		}
		return true
	})

	var sig *types.Signature // enclosing function results, for return boxing
	if fd, ok := root.(*ast.FuncDecl); ok {
		if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			sig = obj.Signature()
		}
	}

	report := func(n ast.Node, format string, args ...any) {
		if seen[n] {
			return
		}
		seen[n] = true
		if dir, ok := dirs.covering(n.Pos(), dirAllocOK); ok {
			if dir.reason == "" {
				pass.Reportf(dir.pos, "//dynopt:alloc-ok needs a reason")
			}
			return
		}
		pass.Reportf(n.Pos(), "hot path: "+format+" (waive with //dynopt:alloc-ok <reason>)", args...)
	}

	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch builtinName(pass, n) {
			case "make":
				report(n, "make allocates")
				return true
			case "new":
				report(n, "new allocates")
				return true
			case "append":
				if !reusedAppends[n] {
					report(n, "append onto a non-reused slice allocates; use x = append(x, ...) over a preallocated buffer")
				}
				return true
			}
			if pkg := calleePackage(pass, n); pkg == "fmt" {
				report(n, "fmt call allocates")
				return true
			}
			checkCallBoxing(pass, n, report)
		case *ast.FuncLit:
			report(n, "func literal allocates a closure")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					report(cl, "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n, "slice/map literal allocates")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					lt := pass.TypesInfo.TypeOf(n.Lhs[i])
					if boxes(pass, rhs, lt) {
						report(rhs, "assignment boxes %s into interface %s", typeName(pass, rhs), lt)
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					if boxes(pass, res, sig.Results().At(i).Type()) {
						report(res, "return boxes %s into interface %s", typeName(pass, res), sig.Results().At(i).Type())
					}
				}
			}
		}
		return true
	})
}

// checkCallBoxing flags concrete values boxed into interface parameters
// (including variadic ...any) and explicit interface conversions I(x).
func checkCallBoxing(pass *analysis.Pass, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: I(x).
		if len(call.Args) == 1 && boxes(pass, call.Args[0], tv.Type) {
			report(call, "conversion boxes %s into interface %s", typeName(pass, call.Args[0]), tv.Type)
		}
		return
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, arg, pt) {
			report(arg, "argument boxes %s into interface %s", typeName(pass, arg), pt)
		}
	}
}

// boxes reports whether assigning expr to target heap-allocates an
// interface box: target is an interface, expr's concrete type is not
// already an interface, not untyped nil, and not pointer-shaped (pointers,
// channels, maps, and funcs fit an interface word without allocating).
func boxes(pass *analysis.Pass, expr ast.Expr, target types.Type) bool {
	if target == nil {
		return false
	}
	if _, isTP := target.(*types.TypeParam); isTP {
		return false
	}
	if !types.IsInterface(target.Underlying()) {
		return false
	}
	et := pass.TypesInfo.TypeOf(expr)
	if et == nil || types.IsInterface(et.Underlying()) {
		return false
	}
	if b, ok := et.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch et.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := et.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

func typeName(pass *analysis.Pass, expr ast.Expr) string {
	if t := pass.TypesInfo.TypeOf(expr); t != nil {
		return t.String()
	}
	return "value"
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// calleePackage returns the import path of the package a selector call
// resolves into (e.g. "fmt" for fmt.Sprintf), or "".
func calleePackage(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// exprEqual reports structural equality for the destination-reuse check:
// identifiers resolving to the same object, matching selector chains, and
// matching index expressions.
func exprEqual(pass *analysis.Pass, a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao := pass.TypesInfo.ObjectOf(a)
		bo := pass.TypesInfo.ObjectOf(b)
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && exprEqual(pass, a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(pass, a.X, b.X) && exprEqual(pass, a.Index, b.Index)
	case *ast.BasicLit:
		b, ok := b.(*ast.BasicLit)
		return ok && a.Kind == b.Kind && a.Value == b.Value
	case *ast.ParenExpr:
		return exprEqual(pass, a.X, b)
	}
	if p, ok := b.(*ast.ParenExpr); ok {
		return exprEqual(pass, a, p.X)
	}
	return false
}
