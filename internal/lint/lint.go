package lint

import "dynopt/internal/lint/analysis"

// All returns the full dynoptlint analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotAlloc,
		MeterSize,
		GrantClose,
		CtxCancel,
		TempName,
		BenchAllocs,
		FaultPoint,
		PageDecode,
	}
}
