package dynopt

import (
	"fmt"
	"reflect"
	"testing"

	"dynopt/internal/bench"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
)

// TestPagedMatchesResident is the storage equivalence property over the full
// evaluation grid: every strategy of §7.2 on every Figure-7 query (with and
// without secondary indexes) must produce byte-identical result rows and
// byte-identical Metrics.Counters whether base datasets are resident
// in-memory partitions or disk-native page files scanned through a page
// cache of one eighth the dataset size. Pushdown projection, zone-map
// pruning, chunk-boundary handling, and the paged index probes must all be
// invisible to the metered cost model — page-level I/O is observed
// separately through PageStats.
func TestPagedMatchesResident(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		resident, err := bench.NewEnv(1, 4, indexed)
		if err != nil {
			t.Fatal(err)
		}
		paged, err := bench.NewEnv(1, 4, indexed)
		if err != nil {
			t.Fatal(err)
		}
		cacheBytes := paged.DatasetBytes() / 8
		if err := paged.ConvertPaged(t.TempDir(), 0, cacheBytes, nil); err != nil {
			t.Fatal(err)
		}
		for _, q := range bench.Queries() {
			for si := range resident.Strategies() {
				name := fmt.Sprintf("indexed=%v/%s/%s", indexed, q.Name, resident.Strategies()[si].Name())
				t.Run(name, func(t *testing.T) {
					type run struct {
						res  *engine.Result
						snap cluster.Snapshot
					}
					exec := func(env *bench.Env) run {
						s := env.Strategies()[si]
						res, rep, err := env.RunOneResult(s, q.SQL)
						if err != nil {
							t.Fatalf("paged=%v: %v", env == paged, err)
						}
						return run{res: res, snap: rep.Counters}
					}
					r, p := exec(resident), exec(paged)
					if !reflect.DeepEqual(r.snap, p.snap) {
						t.Errorf("counters diverged\nresident: %+v\npaged:    %+v", r.snap, p.snap)
					}
					compareResults(t, r.res, p.res)
				})
			}
		}
	}
}
